//! The DSATUR heuristic (Brélaz 1979) and first-fit greedy coloring.

use super::Coloring;
use crate::Graph;

/// Colors `graph` with the DSATUR heuristic: repeatedly pick an uncolored
/// vertex of maximum *saturation degree* (number of distinct colors among
/// its neighbors), break ties by degree then index, and give it the lowest
/// feasible color.
///
/// DSATUR is optimal on bipartite graphs and is the standard upper-bound
/// heuristic cited in the paper's background section; `sbgc-core` uses it to
/// pick a feasible `K` before running the exact solvers.
///
/// # Example
///
/// ```
/// use sbgc_graph::{Graph, algo::dsatur};
/// let g = Graph::cycle(6); // even cycle: bipartite
/// let c = dsatur(&g);
/// assert!(c.is_proper(&g));
/// assert_eq!(c.num_colors(), 2);
/// ```
pub fn dsatur(graph: &Graph) -> Coloring {
    let n = graph.num_vertices();
    let mut color: Vec<Option<usize>> = vec![None; n];
    // neighbor_colors[v] is a bitset-less set of colors adjacent to v,
    // tracked as a sorted Vec (degrees are modest for our instances).
    let mut neighbor_colors: Vec<Vec<usize>> = vec![Vec::new(); n];

    for _ in 0..n {
        // Pick max (saturation, degree, -index).
        let mut best: Option<usize> = None;
        for v in 0..n {
            if color[v].is_some() {
                continue;
            }
            best = Some(match best {
                None => v,
                Some(u) => {
                    let key_v = (neighbor_colors[v].len(), graph.degree(v));
                    let key_u = (neighbor_colors[u].len(), graph.degree(u));
                    if key_v > key_u {
                        v
                    } else {
                        u
                    }
                }
            });
        }
        let v = best.expect("uncolored vertex must exist");
        // Lowest color not in neighbor_colors[v] (sorted).
        let mut c = 0;
        for &used in &neighbor_colors[v] {
            if used == c {
                c += 1;
            } else if used > c {
                break;
            }
        }
        color[v] = Some(c);
        for &w in graph.neighbors(v) {
            let set = &mut neighbor_colors[w as usize];
            if let Err(pos) = set.binary_search(&c) {
                set.insert(pos, c);
            }
        }
    }
    Coloring::new(color.into_iter().map(|c| c.expect("all colored")).collect())
}

/// First-fit greedy coloring in the given vertex order: each vertex gets the
/// lowest color unused among its already-colored neighbors.
///
/// Combined with [`degeneracy_order`](super::degeneracy_order) this yields
/// the degeneracy+1 bound.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the vertex set.
pub fn greedy_coloring(graph: &Graph, order: &[usize]) -> Coloring {
    let n = graph.num_vertices();
    assert_eq!(order.len(), n, "order must cover every vertex");
    let mut color: Vec<Option<usize>> = vec![None; n];
    let mut used: Vec<bool> = Vec::new();
    for &v in order {
        assert!(color[v].is_none(), "order repeats vertex {v}");
        used.clear();
        used.resize(graph.degree(v) + 1, false);
        for &w in graph.neighbors(v) {
            if let Some(c) = color[w as usize] {
                if c < used.len() {
                    used[c] = true;
                }
            }
        }
        let c = used.iter().position(|&u| !u).expect("a free color always exists");
        color[v] = Some(c);
    }
    Coloring::new(color.into_iter().map(|c| c.expect("all colored")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsatur_triangle_uses_three() {
        let g = Graph::complete(3);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 3);
    }

    #[test]
    fn dsatur_odd_cycle_uses_three() {
        let g = Graph::cycle(7);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 3);
    }

    #[test]
    fn dsatur_is_optimal_on_bipartite() {
        // Complete bipartite K_{3,4}: chromatic number 2.
        let edges = (0..3).flat_map(|a| (3..7).map(move |b| (a, b)));
        let g = Graph::from_edges(7, edges);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn dsatur_empty_graph() {
        let g = Graph::empty(4);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 1);
    }

    #[test]
    fn greedy_respects_order() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let c = greedy_coloring(&g, &[0, 1, 2]);
        assert!(c.is_proper(&g));
        assert_eq!(c.colors(), &[0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn greedy_rejects_bad_order() {
        let g = Graph::empty(2);
        let _ = greedy_coloring(&g, &[0, 0]);
    }
}

//! Degeneracy (smallest-last) ordering.

use crate::Graph;

/// Computes a *smallest-last* vertex ordering: repeatedly remove a vertex of
/// minimum remaining degree; the returned order is the reverse of removal,
/// so that greedy coloring along it uses at most `degeneracy + 1` colors.
///
/// # Example
///
/// ```
/// use sbgc_graph::{Graph, algo::{degeneracy_order, greedy_coloring}};
/// let g = Graph::cycle(5);
/// let order = degeneracy_order(&g);
/// let c = greedy_coloring(&g, &order);
/// assert!(c.num_colors() <= 3); // degeneracy of a cycle is 2
/// ```
pub fn degeneracy_order(graph: &Graph) -> Vec<usize> {
    degeneracy_impl(graph).0
}

/// The degeneracy of the graph: the maximum, over the smallest-last removal
/// sequence, of the degree at removal time. `degeneracy + 1` bounds the
/// chromatic number.
pub fn degeneracy(graph: &Graph) -> usize {
    degeneracy_impl(graph).1
}

fn degeneracy_impl(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.num_vertices();
    let mut deg: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut removal = Vec::with_capacity(n);
    let mut degeneracy = 0;
    for _ in 0..n {
        let v =
            (0..n).filter(|&v| !removed[v]).min_by_key(|&v| (deg[v], v)).expect("vertices remain");
        degeneracy = degeneracy.max(deg[v]);
        removed[v] = true;
        removal.push(v);
        for &w in graph.neighbors(v) {
            if !removed[w as usize] {
                deg[w as usize] -= 1;
            }
        }
    }
    removal.reverse();
    (removal, degeneracy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::greedy_coloring;

    #[test]
    fn degeneracy_of_known_graphs() {
        assert_eq!(degeneracy(&Graph::complete(5)), 4);
        assert_eq!(degeneracy(&Graph::cycle(6)), 2);
        assert_eq!(degeneracy(&Graph::empty(3)), 0);
        // A tree has degeneracy 1.
        let tree = Graph::from_edges(5, [(0, 1), (0, 2), (2, 3), (2, 4)]);
        assert_eq!(degeneracy(&tree), 1);
    }

    #[test]
    fn order_is_a_permutation() {
        let g = Graph::cycle(7);
        let mut order = degeneracy_order(&g);
        order.sort_unstable();
        assert_eq!(order, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn greedy_on_order_respects_bound() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]);
        let d = degeneracy(&g);
        let c = greedy_coloring(&g, &degeneracy_order(&g));
        assert!(c.is_proper(&g));
        assert!(c.num_colors() <= d + 1);
    }
}

//! Connectivity utilities.

use crate::Graph;

/// Labels each vertex with its connected-component id (`0..num_components`,
/// in order of first appearance) and returns `(labels, num_components)`.
///
/// # Example
///
/// ```
/// use sbgc_graph::{Graph, algo::connected_components};
/// let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
/// let (labels, count) = connected_components(&g);
/// assert_eq!(count, 3);
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// ```
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.num_vertices();
    let mut labels = vec![usize::MAX; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = count;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &w in graph.neighbors(v) {
                let w = w as usize;
                if labels[w] == usize::MAX {
                    labels[w] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    (labels, count)
}

/// Returns `true` if the graph is connected (vacuously true for ≤1
/// vertices).
pub fn is_connected(graph: &Graph) -> bool {
    graph.num_vertices() <= 1 || connected_components(graph).1 == 1
}

/// BFS distances from `source`; unreachable vertices get `None`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(graph: &Graph, source: usize) -> Vec<Option<usize>> {
    let n = graph.num_vertices();
    assert!(source < n, "source out of range");
    let mut dist = vec![None; n];
    dist[source] = Some(0);
    let mut frontier = std::collections::VecDeque::from([source]);
    while let Some(v) = frontier.pop_front() {
        let d = dist[v].expect("queued vertices have distances");
        for &w in graph.neighbors(v) {
            let w = w as usize;
            if dist[w].is_none() {
                dist[w] = Some(d + 1);
                frontier.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_forest() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&Graph::cycle(5)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], None);
    }
}

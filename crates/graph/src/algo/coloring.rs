//! Vertex colorings and their verification.

use crate::Graph;
use std::fmt;

/// An assignment of a color (a small non-negative integer) to every vertex
/// of a graph.
///
/// Colors are `0..num_colors()`; the paper numbers colors from 1, which is a
/// display concern only. Use [`Coloring::is_proper`] to verify properness
/// against a graph — the independent check `sbgc-core` runs on every decoded
/// solver solution.
///
/// # Example
///
/// ```
/// use sbgc_graph::{Graph, Coloring};
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// let c = Coloring::new(vec![0, 1, 0]);
/// assert!(c.is_proper(&g));
/// assert_eq!(c.num_colors(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Coloring {
    colors: Vec<usize>,
}

impl Coloring {
    /// Wraps a per-vertex color vector.
    pub fn new(colors: Vec<usize>) -> Self {
        Coloring { colors }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.colors.len()
    }

    /// The color of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn color(&self, v: usize) -> usize {
        self.colors[v]
    }

    /// The per-vertex color slice.
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// Number of *distinct* colors used.
    pub fn num_colors(&self) -> usize {
        let mut seen: Vec<bool> = Vec::new();
        for &c in &self.colors {
            if c >= seen.len() {
                seen.resize(c + 1, false);
            }
            seen[c] = true;
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// The largest color index used plus one (0 for the empty coloring).
    pub fn max_color_bound(&self) -> usize {
        self.colors.iter().max().map_or(0, |&c| c + 1)
    }

    /// Returns `true` if no edge of `graph` is monochromatic and the
    /// coloring covers exactly the graph's vertex set.
    pub fn is_proper(&self, graph: &Graph) -> bool {
        self.colors.len() == graph.num_vertices()
            && graph.edges().all(|(a, b)| self.colors[a] != self.colors[b])
    }

    /// The color classes (independent sets): `classes()[c]` lists the
    /// vertices with color `c`. Empty classes for unused color indices are
    /// included up to [`Coloring::max_color_bound`].
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut classes = vec![Vec::new(); self.max_color_bound()];
        for (v, &c) in self.colors.iter().enumerate() {
            classes[c].push(v);
        }
        classes
    }

    /// The color-class cardinality vector `(n1, n2, …)` the paper uses to
    /// denote assignments, ordered by color index.
    pub fn class_sizes(&self) -> Vec<usize> {
        self.classes().iter().map(Vec::len).collect()
    }

    /// Renders the colored graph in Graphviz DOT format (one fill color
    /// per class from a small palette, cycling if more than 12 colors are
    /// used) — handy for eyeballing small solutions.
    ///
    /// # Panics
    ///
    /// Panics if the coloring does not cover the graph's vertex set.
    pub fn to_dot(&self, graph: &Graph) -> String {
        use std::fmt::Write as _;
        assert_eq!(self.colors.len(), graph.num_vertices(), "coloring/graph size mismatch");
        const PALETTE: [&str; 12] = [
            "#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4", "#46f0f0", "#f032e6", "#bcf60c",
            "#fabebe", "#008080", "#e6beff", "#9a6324",
        ];
        let mut out = String::from("graph coloring {\n  node [style=filled];\n");
        for (v, &c) in self.colors.iter().enumerate() {
            let _ = writeln!(
                out,
                "  v{v} [label=\"{v}\\nc{c}\", fillcolor=\"{}\"];",
                PALETTE[c % PALETTE.len()]
            );
        }
        for (a, b) in graph.edges() {
            let _ = writeln!(out, "  v{a} -- v{b};");
        }
        out.push_str("}\n");
        out
    }

    /// Renumbers colors so they form a contiguous range `0..num_colors()`
    /// in order of first appearance.
    pub fn compacted(&self) -> Coloring {
        let mut map: Vec<Option<usize>> = vec![None; self.max_color_bound()];
        let mut next = 0;
        let colors = self
            .colors
            .iter()
            .map(|&c| {
                *map[c].get_or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
            .collect();
        Coloring { colors }
    }
}

impl fmt::Debug for Coloring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Coloring(k={}, {:?})", self.num_colors(), self.colors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properness() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert!(Coloring::new(vec![0, 1, 2]).is_proper(&g));
        assert!(!Coloring::new(vec![0, 1, 1]).is_proper(&g));
        assert!(!Coloring::new(vec![0, 1]).is_proper(&g)); // wrong size
    }

    #[test]
    fn counting_and_classes() {
        let c = Coloring::new(vec![2, 0, 2, 0, 5]);
        assert_eq!(c.num_colors(), 3);
        assert_eq!(c.max_color_bound(), 6);
        let classes = c.classes();
        assert_eq!(classes[0], vec![1, 3]);
        assert_eq!(classes[2], vec![0, 2]);
        assert_eq!(classes[5], vec![4]);
        assert_eq!(c.class_sizes(), vec![2, 0, 2, 0, 0, 1]);
    }

    #[test]
    fn dot_export_contains_all_elements() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let c = Coloring::new(vec![0, 1, 0]);
        let dot = c.to_dot(&g);
        assert!(dot.starts_with("graph coloring {"));
        assert!(dot.contains("v0 --") || dot.contains("v0 -- v1"));
        assert_eq!(dot.matches(" -- ").count(), 2);
        assert_eq!(dot.matches("fillcolor").count(), 3);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn dot_export_checks_size() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let _ = Coloring::new(vec![0]).to_dot(&g);
    }

    #[test]
    fn compaction() {
        let c = Coloring::new(vec![5, 5, 2, 7]);
        let d = c.compacted();
        assert_eq!(d.colors(), &[0, 0, 1, 2]);
        assert_eq!(d.num_colors(), 3);
        assert_eq!(d.max_color_bound(), 3);
    }
}

//! Classical graph-coloring algorithms used for bounds and verification.
//!
//! The paper's experimental procedure (Section 4.1) needs a feasible upper
//! bound on the chromatic number (a heuristic coloring) and profits from a
//! clique lower bound. This module provides:
//!
//! * [`dsatur`] — the Brélaz saturation-degree heuristic, the classic upper
//!   bound quoted in the paper's background section;
//! * [`greedy_coloring`] — first-fit coloring in a given vertex order;
//! * [`greedy_clique`] — a multi-start greedy maximum-clique heuristic
//!   giving a chromatic-number lower bound;
//! * [`degeneracy_order`] — smallest-last ordering and the degeneracy bound;
//! * [`Coloring`] — a checked assignment of colors to vertices.

mod clique;
mod coloring;
mod connectivity;
mod degeneracy;
mod dsatur;

pub use clique::greedy_clique;
pub use coloring::Coloring;
pub use connectivity::{bfs_distances, connected_components, is_connected};
pub use degeneracy::{degeneracy, degeneracy_order};
pub use dsatur::{dsatur, greedy_coloring};

//! Greedy maximum-clique lower bound.

use crate::Graph;

/// Finds a large clique with a multi-start greedy heuristic and returns its
/// vertices (sorted).
///
/// From each of the highest-degree seed vertices (up to 32 starts) the
/// greedy step repeatedly adds the candidate with the most neighbors inside
/// the remaining candidate set. The clique size is a lower bound on the
/// chromatic number, used by the paper's K-selection procedure and by the
/// SC construction's "stronger variant" discussion (Section 3.4).
///
/// # Example
///
/// ```
/// use sbgc_graph::{Graph, algo::greedy_clique};
/// // Two triangles sharing vertex 2, plus an edge making {2,3,4,5}... K4 below:
/// let g = Graph::from_edges(6, [
///     (0, 1), (0, 2), (1, 2),             // triangle
///     (2, 3), (2, 4), (3, 4), (3, 5), (4, 5), (2, 5), // K4 on {2,3,4,5}
/// ]);
/// let q = greedy_clique(&g);
/// assert_eq!(q, vec![2, 3, 4, 5]);
/// ```
pub fn greedy_clique(graph: &Graph) -> Vec<usize> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // Seeds: vertices in decreasing degree order.
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    let starts = by_degree.len().min(32);

    let mut best: Vec<usize> = Vec::new();
    for &seed in &by_degree[..starts] {
        let mut clique = vec![seed];
        let mut candidates: Vec<usize> =
            graph.neighbors(seed).iter().map(|&w| w as usize).collect();
        while !candidates.is_empty() {
            // Pick the candidate with most neighbors among candidates.
            let pick = candidates
                .iter()
                .copied()
                .max_by_key(|&v| {
                    let inside =
                        candidates.iter().filter(|&&w| w != v && graph.has_edge(v, w)).count();
                    (inside, std::cmp::Reverse(v))
                })
                .expect("candidates non-empty");
            clique.push(pick);
            candidates.retain(|&w| w != pick && graph.has_edge(pick, w));
        }
        if clique.len() > best.len() {
            best = clique;
        }
    }
    best.sort_unstable();
    debug_assert!(is_clique(graph, &best));
    best
}

/// Returns `true` if `vertices` are pairwise adjacent in `graph`.
pub(crate) fn is_clique(graph: &Graph, vertices: &[usize]) -> bool {
    vertices
        .iter()
        .enumerate()
        .all(|(i, &a)| vertices[i + 1..].iter().all(|&b| graph.has_edge(a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_whole_complete_graph() {
        let g = Graph::complete(6);
        assert_eq!(greedy_clique(&g).len(), 6);
    }

    #[test]
    fn triangle_in_cycle_with_chord() {
        let mut edges: Vec<_> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        edges.push((0, 2));
        let g = Graph::from_edges(5, edges);
        let q = greedy_clique(&g);
        assert_eq!(q.len(), 3);
        assert!(is_clique(&g, &q));
    }

    #[test]
    fn empty_and_edgeless() {
        assert!(greedy_clique(&Graph::empty(0)).is_empty());
        assert_eq!(greedy_clique(&Graph::empty(3)).len(), 1);
    }

    #[test]
    fn result_is_always_a_clique() {
        // Petersen graph (clique number 2).
        let outer = (0..5).map(|i| (i, (i + 1) % 5));
        let spokes = (0..5).map(|i| (i, i + 5));
        let inner = (0..5).map(|i| (5 + i, 5 + (i + 2) % 5));
        let g = Graph::from_edges(10, outer.chain(spokes).chain(inner));
        let q = greedy_clique(&g);
        assert!(is_clique(&g, &q));
        assert_eq!(q.len(), 2);
    }
}

//! Peak-allocation assertion for the streaming DIMACS parser.
//!
//! `parse_col` builds the graph in two passes through `CsrBuilder` and
//! must not materialize an intermediate edge list. This test installs a
//! counting global allocator and asserts that the peak memory in flight
//! during a parse stays within the CSR structure plus `O(n)` bookkeeping —
//! a budget the old `Vec<(usize, usize)>`-buffering implementation (16
//! bytes per edge before the graph even exists) cannot meet.
//!
//! The allocator must be process-global, so this file holds exactly this
//! one test and nothing else runs in the binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the added bookkeeping is lock-free atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Resets the peak-tracking baseline and returns a closure-scoped peak:
/// the high-water mark of bytes allocated *beyond* the bytes live at
/// entry.
fn peak_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let out = f();
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    (out, peak)
}

#[test]
fn parse_col_peak_allocation_is_streaming() {
    // A dense-ish random graph: n small, m large, so the edge list —
    // not the O(n) bookkeeping — dominates any non-streaming parse.
    let n = 1_000;
    let g = sbgc_graph::gen::gnm(n, 120_000, 7);
    let m = g.num_edges();
    let text = sbgc_graph::dimacs::write_col(&g, Some("peak-allocation probe"));

    let (parsed, peak) = peak_during(|| sbgc_graph::dimacs::parse_col(&text).expect("valid"));
    assert_eq!(parsed, g, "streaming parse must reproduce the graph");

    // Budget: the final CSR adjacency (2m u32 = 8m bytes) plus generous
    // O(n) slack. The old implementation buffered m `(usize, usize)`
    // pairs (16m bytes) *on top of* the CSR build, blowing past this.
    let budget = 12 * m + 64 * (n + 1);
    assert!(
        peak <= budget,
        "parse_col peak allocation {peak} B exceeds streaming budget {budget} B \
         (n={n}, m={m}); did an intermediate edge list come back?"
    );
}

//! Property-based tests on the graph substrate.

use proptest::prelude::*;
use sbgc_graph::{algo, dimacs, gen, Graph};

/// Strategy: a random edge list over up to `max_n` vertices.
fn edges_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edge = (0..n, 0..n);
        (Just(n), proptest::collection::vec(edge, 0..3 * n))
    })
}

proptest! {
    #[test]
    fn construction_invariants((n, edges) in edges_strategy(40)) {
        let g = Graph::from_edges(n, edges.clone());
        prop_assert_eq!(g.num_vertices(), n);
        // Handshake lemma.
        let degree_sum: usize = (0..n).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // Symmetry of adjacency.
        for (a, b) in g.edges() {
            prop_assert!(g.has_edge(a, b));
            prop_assert!(g.has_edge(b, a));
            prop_assert_ne!(a, b);
        }
        // Edge count never exceeds input or the complete graph.
        prop_assert!(g.num_edges() <= edges.len());
        prop_assert!(g.num_edges() <= n * (n - 1) / 2);
    }

    #[test]
    fn dimacs_roundtrip((n, edges) in edges_strategy(30)) {
        let g = Graph::from_edges(n, edges);
        let text = dimacs::write_col(&g, None);
        let h = dimacs::parse_col(&text).expect("roundtrip parse");
        prop_assert_eq!(g, h);
    }

    #[test]
    fn dsatur_is_proper_and_bounded((n, edges) in edges_strategy(30)) {
        let g = Graph::from_edges(n, edges);
        let c = algo::dsatur(&g);
        prop_assert!(c.is_proper(&g));
        // Greedy bound: at most max_degree + 1 colors.
        prop_assert!(c.num_colors() <= g.max_degree() + 1);
        // And at least the clique bound.
        prop_assert!(c.num_colors() >= algo::greedy_clique(&g).len());
    }

    #[test]
    fn greedy_on_degeneracy_order_respects_bound((n, edges) in edges_strategy(30)) {
        let g = Graph::from_edges(n, edges);
        let order = algo::degeneracy_order(&g);
        let c = algo::greedy_coloring(&g, &order);
        prop_assert!(c.is_proper(&g));
        prop_assert!(c.num_colors() <= algo::degeneracy(&g) + 1);
    }

    #[test]
    fn relabel_preserves_structure((n, edges) in edges_strategy(25), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let g = Graph::from_edges(n, edges);
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let h = g.relabel(&perm);
        prop_assert_eq!(g.num_edges(), h.num_edges());
        let degrees = |g: &Graph| {
            let mut d: Vec<usize> = (0..g.num_vertices()).map(|v| g.degree(v)).collect();
            d.sort_unstable();
            d
        };
        prop_assert_eq!(degrees(&g), degrees(&h));
        // DSATUR color count is invariant under relabeling up to bound; the
        // chromatic number certainly is, but DSATUR itself may differ — so
        // check properness of the pullback instead.
        let c = algo::dsatur(&h);
        let pulled: Vec<usize> = (0..n).map(|v| c.color(perm[v])).collect();
        prop_assert!(sbgc_graph::Coloring::new(pulled).is_proper(&g));
    }

    #[test]
    fn gnm_has_exact_size(n in 2usize..40, seed in any::<u64>()) {
        let max = n * (n - 1) / 2;
        let m = (seed as usize) % (max + 1);
        let g = gen::gnm(n, m, seed);
        prop_assert_eq!((g.num_vertices(), g.num_edges()), (n, m));
    }

    #[test]
    fn mycielski_step_properties(k in 2usize..6) {
        let g = gen::mycielski(k);
        let h = gen::mycielski_step(&g);
        prop_assert_eq!(h.num_vertices(), 2 * g.num_vertices() + 1);
        prop_assert_eq!(h.num_edges(), 3 * g.num_edges() + g.num_vertices());
        // The original graph embeds as the first n vertices.
        for (a, b) in g.edges() {
            prop_assert!(h.has_edge(a, b));
        }
    }

    #[test]
    fn queens_rows_are_cliques(r in 1usize..6, c in 1usize..6) {
        let g = gen::queens(r, c);
        for row in 0..r {
            for a in 0..c {
                for b in a + 1..c {
                    prop_assert!(g.has_edge(row * c + a, row * c + b));
                }
            }
        }
    }

    #[test]
    fn coloring_compaction_preserves_properness((n, edges) in edges_strategy(20)) {
        let g = Graph::from_edges(n, edges);
        let c = algo::dsatur(&g);
        let compact = c.compacted();
        prop_assert!(compact.is_proper(&g));
        prop_assert_eq!(compact.num_colors(), c.num_colors());
        prop_assert_eq!(compact.max_color_bound(), compact.num_colors());
    }
}

#[test]
fn suite_instances_are_connected_enough() {
    // Sanity: no suite instance has isolated vertices except possibly the
    // sparse random ones (isolated vertices would make coloring trivial in
    // a way the originals are not).
    for inst in sbgc_graph::suite::build_all() {
        let isolated =
            (0..inst.graph.num_vertices()).filter(|&v| inst.graph.degree(v) == 0).count();
        assert!(
            isolated * 10 <= inst.graph.num_vertices(),
            "{}: {} isolated vertices",
            inst.meta.name,
            isolated
        );
    }
}

//! Lex-leader symmetry-breaking predicates.

use crate::litperm::LitPermutation;
use sbgc_formula::{Lit, PbFormula};

/// Which lex-leader construction to generate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SbpConstruction {
    /// The efficient linear, tautology-free chain construction of Aloul,
    /// Markov & Sakallah 2003: one auxiliary equality-chain variable and a
    /// constant number of clauses per support variable.
    #[default]
    EfficientLinear,
    /// The earlier quadratic-size construction (no chain variables; each
    /// ordering constraint re-expands the equality prefix). Kept for the
    /// `ablation_lexleader` bench.
    NaiveQuadratic,
}

/// Statistics of an [`add_sbps`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SbpStats {
    /// Number of permutations for which predicates were generated.
    pub permutations: usize,
    /// Auxiliary variables introduced.
    pub aux_vars: usize,
    /// Clauses appended.
    pub clauses: usize,
}

/// Appends a lex-leader SBP to `formula` for each permutation, returning
/// aggregate statistics.
///
/// Each predicate admits exactly the assignments that are
/// lexicographically ≤ their image under the permutation (variable order =
/// index order), so adding it never changes satisfiability or the optimal
/// objective value — it only removes symmetric duplicates.
pub fn add_sbps(
    formula: &mut PbFormula,
    perms: &[LitPermutation],
    construction: SbpConstruction,
) -> SbpStats {
    let mut stats = SbpStats::default();
    for p in perms {
        let s = sbp_for_permutation(formula, p, construction);
        stats.permutations += 1;
        stats.aux_vars += s.aux_vars;
        stats.clauses += s.clauses;
    }
    stats
}

/// Appends the lex-leader SBP for a single permutation.
///
/// With variable order `x₀ < x₁ < …`, the predicate asserts for each
/// support variable `xⱼ` (ascending):
///
/// ```text
/// (x₀ = π(x₀)) ∧ … ∧ (xⱼ₋₁ = π(xⱼ₋₁))  ⟹  xⱼ ≤ π(xⱼ)
/// ```
///
/// In the [`SbpConstruction::EfficientLinear`] form the equality prefix is
/// tracked by chain variables `eⱼ ⇔ eⱼ₋₁ ∧ (xⱼ₋₁ = π(xⱼ₋₁))`; in the
/// [`SbpConstruction::NaiveQuadratic`] form each implication is expanded
/// into clauses over the prefix (quadratic total size), using one
/// difference variable per prefix position.
pub fn sbp_for_permutation(
    formula: &mut PbFormula,
    perm: &LitPermutation,
    construction: SbpConstruction,
) -> SbpStats {
    let support = perm.support();
    if support.is_empty() {
        return SbpStats { permutations: 1, ..SbpStats::default() };
    }
    let before_vars = formula.num_vars();
    let before_clauses = formula.clauses().len();

    match construction {
        SbpConstruction::EfficientLinear => {
            // e = "prefix equal so far"; starts implicitly true.
            let mut prev_e: Option<Lit> = None;
            for (j, &var) in support.iter().enumerate() {
                let x = var.positive();
                let px = perm.apply(x);
                // Ordering constraint: prev_e → (x ≤ px), i.e. prev_e → (¬x ∨ px).
                match prev_e {
                    None => formula.add_clause([!x, px]),
                    Some(e) => formula.add_clause([!e, !x, px]),
                }
                // Last support variable needs no further chain.
                if j + 1 == support.len() {
                    break;
                }
                // e' ⇔ prev_e ∧ (x ⇔ px).
                let e_next = formula.new_var().positive();
                match prev_e {
                    None => {
                        // e' ⇔ (x ⇔ px)
                        formula.add_clause([!e_next, !x, px]);
                        formula.add_clause([!e_next, x, !px]);
                        formula.add_clause([e_next, !x, !px]);
                        formula.add_clause([e_next, x, px]);
                    }
                    Some(e) => {
                        formula.add_clause([!e_next, e]);
                        formula.add_clause([!e_next, !x, px]);
                        formula.add_clause([!e_next, x, !px]);
                        formula.add_clause([e_next, !e, !x, !px]);
                        formula.add_clause([e_next, !e, x, px]);
                    }
                }
                prev_e = Some(e_next);
            }
        }
        SbpConstruction::NaiveQuadratic => {
            // d_k ⇔ (x_k ≠ π(x_k)) difference variables; ordering clause j
            // is (d_0 ∨ d_1 ∨ … ∨ d_{j-1} ∨ ¬x_j ∨ π(x_j)).
            let mut diffs: Vec<Lit> = Vec::new();
            for (j, &var) in support.iter().enumerate() {
                let x = var.positive();
                let px = perm.apply(x);
                let mut clause: Vec<Lit> = diffs.clone();
                clause.push(!x);
                clause.push(px);
                formula.add_clause(clause);
                if j + 1 == support.len() {
                    break;
                }
                let d = formula.new_var().positive();
                // d ⇔ (x ≠ px): d → (x≠px) and (x≠px) → d.
                formula.add_clause([!d, x, px]);
                formula.add_clause([!d, !x, !px]);
                formula.add_clause([d, !x, px]);
                formula.add_clause([d, x, !px]);
                diffs.push(d);
            }
        }
    }

    SbpStats {
        permutations: 1,
        aux_vars: formula.num_vars() - before_vars,
        clauses: formula.clauses().len() - before_clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::{Assignment, Var};

    /// Brute-force check: an assignment satisfies the SBP (projected to
    /// original variables, with aux vars existentially quantified) iff it
    /// is lex ≤ its image under the permutation.
    fn sbp_admits(original_vars: usize, formula: &PbFormula, assignment_bits: u32) -> bool {
        let aux = formula.num_vars() - original_vars;
        (0..(1u32 << aux)).any(|aux_bits| {
            let asg = Assignment::from_bools(
                (0..original_vars)
                    .map(|i| assignment_bits >> i & 1 == 1)
                    .chain((0..aux).map(|i| aux_bits >> i & 1 == 1)),
            );
            formula.is_satisfied_by(&asg)
        })
    }

    fn lex_leq_image(perm: &LitPermutation, bits: u32, n: usize) -> bool {
        let value = |l: Lit, bits: u32| {
            let b = bits >> l.var().index() & 1 == 1;
            b != l.is_negated()
        };
        // Compare (x_0, x_1, ...) with (π(x_0), π(x_1), ...): x ≤ π(x).
        for i in 0..n {
            let x = Var::from_index(i).positive();
            let a = value(x, bits);
            let b = value(perm.apply(x), bits);
            if a != b {
                // false < true in lex order means x must be 0 where they
                // first differ.
                return !a;
            }
        }
        true
    }

    fn check_construction(construction: SbpConstruction) {
        // Swap of x0, x1 plus an independent swap of x2, x3.
        let n = 4;
        let p1 = LitPermutation::from_var_swap(n, Var::from_index(0), Var::from_index(1));
        for perm in [&p1] {
            let mut f = PbFormula::with_vars(n);
            let _ = sbp_for_permutation(&mut f, perm, construction);
            for bits in 0..(1u32 << n) {
                let admitted = sbp_admits(n, &f, bits);
                let expected = lex_leq_image(perm, bits, n);
                assert_eq!(
                    admitted, expected,
                    "{construction:?} bits={bits:04b}: admitted={admitted}, lex={expected}"
                );
            }
        }
    }

    #[test]
    fn efficient_linear_is_exact_lex_leader() {
        check_construction(SbpConstruction::EfficientLinear);
    }

    #[test]
    fn naive_quadratic_is_exact_lex_leader() {
        check_construction(SbpConstruction::NaiveQuadratic);
    }

    #[test]
    fn three_cycle_permutation() {
        // x0 -> x1 -> x2 -> x0.
        let n = 3;
        let images = vec![2, 3, 4, 5, 0, 1];
        let perm = LitPermutation::from_images(images).expect("valid");
        for construction in [SbpConstruction::EfficientLinear, SbpConstruction::NaiveQuadratic] {
            let mut f = PbFormula::with_vars(n);
            let _ = sbp_for_permutation(&mut f, &perm, construction);
            for bits in 0..(1u32 << n) {
                assert_eq!(
                    sbp_admits(n, &f, bits),
                    lex_leq_image(&perm, bits, n),
                    "{construction:?} bits={bits:03b}"
                );
            }
        }
    }

    #[test]
    fn phase_shift_sbp() {
        // x0 -> ~x0: lex-leader forces x0 = 0.
        let perm = LitPermutation::from_images(vec![1, 0]).expect("valid");
        let mut f = PbFormula::with_vars(1);
        let _ = sbp_for_permutation(&mut f, &perm, SbpConstruction::EfficientLinear);
        assert!(sbp_admits(1, &f, 0));
        assert!(!sbp_admits(1, &f, 1));
    }

    #[test]
    fn identity_adds_nothing() {
        let mut f = PbFormula::with_vars(3);
        let stats = sbp_for_permutation(
            &mut f,
            &LitPermutation::identity(3),
            SbpConstruction::EfficientLinear,
        );
        assert_eq!(stats.clauses, 0);
        assert_eq!(f.clauses().len(), 0);
    }

    #[test]
    fn linear_is_smaller_than_quadratic_on_big_supports() {
        let n = 16;
        // One big cycle over all variables.
        let mut images: Vec<u32> = Vec::new();
        for i in 0..n {
            let j = (i + 1) % n;
            images.push(2 * j as u32);
            images.push(2 * j as u32 + 1);
        }
        let perm = LitPermutation::from_images(images).expect("valid");
        let mut f1 = PbFormula::with_vars(n);
        let s1 = sbp_for_permutation(&mut f1, &perm, SbpConstruction::EfficientLinear);
        let mut f2 = PbFormula::with_vars(n);
        let s2 = sbp_for_permutation(&mut f2, &perm, SbpConstruction::NaiveQuadratic);
        let lits1: usize = f1.clauses().iter().map(|c| c.len()).sum();
        let lits2: usize = f2.clauses().iter().map(|c| c.len()).sum();
        assert!(lits1 < lits2, "linear {lits1} vs quadratic {lits2}");
        assert!(s1.clauses > 0 && s2.clauses > 0);
    }

    #[test]
    fn stats_reflect_additions() {
        let perm = LitPermutation::from_var_swap(4, Var::from_index(0), Var::from_index(3));
        let mut f = PbFormula::with_vars(4);
        let stats = add_sbps(&mut f, &[perm], SbpConstruction::EfficientLinear);
        assert_eq!(stats.permutations, 1);
        assert_eq!(stats.aux_vars, f.num_vars() - 4);
        assert_eq!(stats.clauses, f.clauses().len());
    }
}

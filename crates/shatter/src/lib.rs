//! Instance-dependent symmetry breaking for CNF / pseudo-Boolean formulas —
//! a reimplementation of the Shatter flow (Aloul, Markov & Sakallah 2003;
//! extended to PB formulas in Aloul et al. 2004).
//!
//! The flow has three stages, mirroring Section 2.4 of the paper:
//!
//! 1. **Reduction to graph automorphism** ([`formula_graph`]): the formula
//!    is encoded as a vertex-colored graph whose color-preserving
//!    automorphism group is isomorphic to the symmetry group of the
//!    formula. Positive and negative literals share a color (so phase-shift
//!    symmetries are detectable), binary clauses become direct
//!    literal–literal edges, longer clauses get a clause vertex, and PB
//!    constraints get constraint vertices colored by their
//!    coefficient-multiset/bound signature (with coefficient-group vertices
//!    when coefficients are non-uniform).
//! 2. **Symmetry detection** ([`detect_symmetries`]): the automorphism
//!    group of that graph is computed with `sbgc-aut` (our Saucy
//!    substitute) and generators are mapped back to permutations of the
//!    formula's literals, dropping any spurious generator that fails to
//!    commute with negation.
//! 3. **SBP generation** ([`add_sbps`]): for each generator a
//!    lex-leader symmetry-breaking predicate is appended, using the
//!    efficient linear, tautology-free chain construction of Aloul et al.
//!    2003 (and optionally the quadratic-size naive chain, kept for the
//!    ablation benches).
//!
//! [`shatter`] runs all three stages.
//!
//! # Example
//!
//! ```
//! use sbgc_formula::{PbFormula, Var};
//! use sbgc_shatter::{shatter, ShatterOptions};
//!
//! // x0 and x1 are interchangeable in (x0 ∨ x1).
//! let mut f = PbFormula::new();
//! let a = f.new_var().positive();
//! let b = f.new_var().positive();
//! f.add_clause([a, b]);
//!
//! let report = shatter(&mut f, &ShatterOptions::default());
//! assert!(report.num_generators >= 1);
//! assert!(f.clauses().len() > 1); // SBPs were appended
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detect;
mod graph;
mod litperm;
mod sbp;

pub use detect::{detect_symmetries, SymmetryReport};
pub use graph::{formula_graph, FormulaGraph};
pub use litperm::LitPermutation;
pub use sbp::{add_sbps, sbp_for_permutation, SbpConstruction, SbpStats};

pub use sbgc_aut::AutomorphismOptions;

/// How many group elements to break (Crawford et al. break the *whole*
/// group — exponentially many SBPs; Aloul et al. show breaking only the
/// generators is usually enough and far cheaper; Section 2.4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SbpScope {
    /// One lex-leader predicate per detected generator (the Shatter
    /// default).
    #[default]
    Generators,
    /// Generators plus their pairwise compositions — a step towards
    /// Crawford's complete breaking, at quadratically more predicates.
    /// Used by the ablation benches.
    GeneratorsAndPairs,
}

/// Options for the end-to-end [`shatter`] flow.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShatterOptions {
    /// Budget for the automorphism search.
    pub aut: AutomorphismOptions,
    /// Which lex-leader construction to append.
    pub construction: SbpConstruction,
    /// How much of the group to break.
    pub scope: SbpScope,
}

/// Combined report of a [`shatter`] run.
#[derive(Clone, Debug)]
pub struct ShatterReport {
    /// Detection-stage report.
    pub symmetry: SymmetryReport,
    /// Number of symmetry generators found (after spurious filtering).
    pub num_generators: usize,
    /// SBP-stage statistics.
    pub sbp: SbpStats,
}

/// Runs the full flow: detect symmetries of `formula`, then append
/// lex-leader SBPs for every generator (and, with
/// [`SbpScope::GeneratorsAndPairs`], for the pairwise compositions of
/// generators as well). Returns the combined report.
pub fn shatter(formula: &mut sbgc_formula::PbFormula, opts: &ShatterOptions) -> ShatterReport {
    let (mut perms, symmetry) = detect_symmetries(formula, &opts.aut);
    let num_generators = perms.len();
    if opts.scope == SbpScope::GeneratorsAndPairs {
        let mut pairs = Vec::new();
        for i in 0..num_generators {
            for j in 0..num_generators {
                if i == j {
                    continue;
                }
                let composed = perms[i].compose(&perms[j]);
                if !composed.is_identity() && !perms.contains(&composed) {
                    pairs.push(composed);
                }
            }
        }
        pairs.sort_by_key(|p| p.support().len());
        pairs.dedup();
        perms.extend(pairs);
    }
    let sbp = add_sbps(formula, &perms, opts.construction);
    ShatterReport { num_generators, symmetry, sbp }
}

//! Symmetry detection: graph automorphisms mapped back to literal
//! permutations.

use crate::graph::formula_graph;
use crate::litperm::LitPermutation;
use sbgc_aut::{automorphisms_with, AutomorphismOptions};
use sbgc_formula::PbFormula;
use std::time::{Duration, Instant};

/// Detection-stage statistics — the symmetry columns of the paper's
/// Table 2 (`#S` as `10^x`, `#G`, Saucy time).
#[derive(Clone, Debug)]
pub struct SymmetryReport {
    /// `log₁₀` of the symmetry-group order.
    pub order_log10: f64,
    /// Group order as `u128` when it fits.
    pub order: Option<u128>,
    /// Number of generators after spurious filtering.
    pub num_generators: usize,
    /// Generators dropped because they did not commute with negation
    /// (spurious graph automorphisms; rare, see Section 2.4).
    pub spurious_dropped: usize,
    /// Wall-clock time of graph construction + automorphism search.
    pub detection_time: Duration,
    /// Vertices in the symmetry graph.
    pub graph_vertices: usize,
    /// Edges in the symmetry graph.
    pub graph_edges: usize,
    /// `false` if the automorphism search hit its budget (order is then a
    /// lower bound).
    pub exact: bool,
}

/// Detects the symmetries of `formula`: builds the colored symmetry graph,
/// computes its automorphism group, and maps each generator back to a
/// permutation of the formula's literals.
///
/// Generators that move literal vertices inconsistently with negation
/// (spurious symmetries, possible only in the presence of circular
/// implication chains — see the paper, Section 2.4) are dropped and
/// counted in the report.
pub fn detect_symmetries(
    formula: &PbFormula,
    opts: &AutomorphismOptions,
) -> (Vec<LitPermutation>, SymmetryReport) {
    let start = Instant::now();
    let fg = formula_graph(formula);
    let group = automorphisms_with(&fg.graph, opts);
    let n2 = 2 * fg.num_vars;
    let mut perms = Vec::new();
    let mut spurious = 0;
    for g in group.generators() {
        let images: Vec<u32> = (0..n2).map(|code| g.apply(code) as u32).collect();
        match LitPermutation::from_images(images) {
            Some(p) if !p.is_identity() => {
                // The efficient same-color literal encoding can produce
                // spurious automorphisms when the formula contains circular
                // implication chains (binary clause edges masquerading as
                // Boolean-consistency edges) — the paper notes these "can
                // be easily checked for", which is what we do here.
                if p.preserves(formula) {
                    perms.push(p);
                } else {
                    spurious += 1;
                }
            }
            Some(_) => {} // identity on literals (moves only constraint vertices)
            None => spurious += 1,
        }
    }
    let report = SymmetryReport {
        order_log10: group.order_log10(),
        order: group.order_u128(),
        num_generators: perms.len(),
        spurious_dropped: spurious,
        detection_time: start.elapsed(),
        graph_vertices: fg.graph.num_vertices(),
        graph_edges: fg.graph.num_edges(),
        exact: group.is_exact(),
    };
    (perms, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::{PbConstraint, Var};

    fn detect(f: &PbFormula) -> (Vec<LitPermutation>, SymmetryReport) {
        detect_symmetries(f, &AutomorphismOptions::default())
    }

    #[test]
    fn symmetric_or_clause() {
        let mut f = PbFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause([a.positive(), b.positive()]);
        let (perms, report) = detect(&f);
        assert!(!perms.is_empty());
        assert!(perms.iter().all(|p| p.preserves(&f)));
        assert!(report.order_log10 > 0.0);
    }

    #[test]
    fn asymmetric_formula_has_no_generators() {
        let mut f = PbFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        // a forced, a->b: no symmetry (not even phase shifts).
        f.add_unit(a.positive());
        f.add_clause([a.negative(), b.positive()]);
        f.add_unit(b.positive());
        let (perms, _) = detect(&f);
        assert!(perms.iter().all(|p| p.preserves(&f)));
        // No permutation may move anything: a and b are distinguished.
        assert!(perms.is_empty(), "got {perms:?}");
    }

    #[test]
    fn exactly_one_block_is_fully_symmetric() {
        // exactly-one over k variables: symmetry group S_k on the block.
        let mut f = PbFormula::new();
        let lits: Vec<_> = f.new_vars(4).into_iter().map(Var::positive).collect();
        f.add_exactly_one(&lits);
        let (perms, report) = detect(&f);
        assert!(perms.iter().all(|p| p.preserves(&f)));
        // |S_4| = 24.
        assert_eq!(report.order, Some(24));
    }

    #[test]
    fn weighted_pb_restricts_symmetry() {
        let mut f = PbFormula::new();
        let lits: Vec<_> = f.new_vars(3).into_iter().map(Var::positive).collect();
        // 2a + b + c >= 2: only b<->c symmetric.
        f.add_pb(PbConstraint::at_least([(2, lits[0]), (1, lits[1]), (1, lits[2])], 2));
        let (perms, _) = detect(&f);
        assert!(perms.iter().all(|p| p.preserves(&f)));
        assert!(perms.iter().all(|p| p.apply(lits[0]).var() == lits[0].var()));
    }

    #[test]
    fn phase_shift_symmetry_found() {
        // A single unconstrained variable: x <-> ~x is a symmetry.
        let f = PbFormula::with_vars(1);
        let (perms, _) = detect(&f);
        assert!(perms.iter().any(|p| p.has_phase_shift()));
    }

    #[test]
    fn report_counts_graph_size() {
        let mut f = PbFormula::new();
        let lits: Vec<_> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_clause(lits);
        let (_, report) = detect(&f);
        assert_eq!(report.graph_vertices, 7);
        assert_eq!(report.graph_edges, 6);
        assert!(report.exact);
        assert_eq!(report.spurious_dropped, 0);
    }
}

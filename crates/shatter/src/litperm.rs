//! Permutations of a formula's literals.

use sbgc_formula::{Lit, PbFormula, Var};
use std::fmt;

/// A permutation of the `2n` literals of an `n`-variable formula that
/// commutes with negation (`π(¬ℓ) = ¬π(ℓ)`) — the algebraic form of a
/// formula symmetry. Phase-shift symmetries (mapping a variable to its own
/// negation) are representable.
///
/// # Example
///
/// ```
/// use sbgc_formula::Var;
/// use sbgc_shatter::LitPermutation;
///
/// let a = Var::from_index(0);
/// let b = Var::from_index(1);
/// // Swap variables a and b.
/// let p = LitPermutation::from_var_swap(2, a, b);
/// assert_eq!(p.apply(a.positive()), b.positive());
/// assert_eq!(p.apply(a.negative()), b.negative());
/// assert!(!p.is_identity());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LitPermutation {
    /// `images[l.code()]` = code of the image literal.
    images: Vec<u32>,
}

impl LitPermutation {
    /// The identity on `num_vars` variables.
    pub fn identity(num_vars: usize) -> Self {
        LitPermutation { images: (0..2 * num_vars as u32).collect() }
    }

    /// Builds a permutation from a literal-code image table.
    ///
    /// Returns `None` if the table is not a bijection or does not commute
    /// with negation.
    pub fn from_images(images: Vec<u32>) -> Option<Self> {
        let n2 = images.len();
        if !n2.is_multiple_of(2) {
            return None;
        }
        let mut seen = vec![false; n2];
        for &img in &images {
            let i = img as usize;
            if i >= n2 || seen[i] {
                return None;
            }
            seen[i] = true;
        }
        // Negation consistency: π(¬ℓ) == ¬π(ℓ).
        for code in (0..n2).step_by(2) {
            if images[code] ^ 1 != images[code ^ 1] {
                return None;
            }
        }
        Some(LitPermutation { images })
    }

    /// The transposition of two variables (both phases), identity
    /// elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if either variable is out of range.
    pub fn from_var_swap(num_vars: usize, a: Var, b: Var) -> Self {
        let mut p = Self::identity(num_vars);
        let (pa, na) = (a.positive().code(), a.negative().code());
        let (pb, nb) = (b.positive().code(), b.negative().code());
        p.images.swap(pa, pb);
        p.images.swap(na, nb);
        p
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.images.len() / 2
    }

    /// The image of a literal.
    ///
    /// # Panics
    ///
    /// Panics if the literal is out of range.
    pub fn apply(&self, lit: Lit) -> Lit {
        Lit::from_code(self.images[lit.code()] as usize)
    }

    /// Returns `true` if every literal is fixed.
    pub fn is_identity(&self) -> bool {
        self.images.iter().enumerate().all(|(i, &img)| i == img as usize)
    }

    /// Variables whose positive literal is moved (the support), ascending.
    pub fn support(&self) -> Vec<Var> {
        (0..self.num_vars())
            .map(Var::from_index)
            .filter(|v| self.apply(v.positive()) != v.positive())
            .collect()
    }

    /// Returns `true` if some variable maps to its own negation.
    pub fn has_phase_shift(&self) -> bool {
        (0..self.num_vars()).any(|i| {
            let v = Var::from_index(i);
            self.apply(v.positive()) == v.negative()
        })
    }

    /// Composition: `(p.compose(q)).apply(l) == p.apply(q.apply(l))`.
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn compose(&self, other: &LitPermutation) -> LitPermutation {
        assert_eq!(self.images.len(), other.images.len(), "size mismatch");
        LitPermutation { images: other.images.iter().map(|&m| self.images[m as usize]).collect() }
    }

    /// Checks that applying this permutation to every constraint of
    /// `formula` yields a constraint set equal (as normalized multisets) to
    /// the original — i.e. that this is a genuine formula symmetry.
    ///
    /// This is the independent verification used by tests; the Shatter flow
    /// itself relies on the faithfulness of the graph construction.
    pub fn preserves(&self, formula: &PbFormula) -> bool {
        use std::collections::BTreeMap;
        if formula.num_vars() != self.num_vars() {
            return false;
        }
        // Clauses as sorted literal-code vectors.
        let canon_clause = |lits: &[Lit]| {
            let mut v: Vec<u32> = lits.iter().map(|l| l.code() as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut before: BTreeMap<Vec<u32>, isize> = BTreeMap::new();
        for c in formula.clauses() {
            *before.entry(canon_clause(c.literals())).or_insert(0) += 1;
        }
        for c in formula.clauses() {
            let mapped: Vec<Lit> = c.literals().iter().map(|&l| self.apply(l)).collect();
            *before.entry(canon_clause(&mapped)).or_insert(0) -= 1;
        }
        if before.values().any(|&v| v != 0) {
            return false;
        }
        // PB constraints as (sorted (coeff, lit-code) terms, rhs).
        let mut pb: BTreeMap<(Vec<(u64, u32)>, u64), isize> = BTreeMap::new();
        let canon_pb = |terms: &[(u64, Lit)], rhs: u64| {
            let mut v: Vec<(u64, u32)> = terms.iter().map(|&(a, l)| (a, l.code() as u32)).collect();
            v.sort_unstable();
            (v, rhs)
        };
        for c in formula.pb_constraints() {
            *pb.entry(canon_pb(c.terms(), c.rhs())).or_insert(0) += 1;
        }
        for c in formula.pb_constraints() {
            let mapped: Vec<(u64, Lit)> =
                c.terms().iter().map(|&(a, l)| (a, self.apply(l))).collect();
            *pb.entry(canon_pb(&mapped, c.rhs())).or_insert(0) -= 1;
        }
        if pb.values().any(|&v| v != 0) {
            return false;
        }
        // Objective must be fixed as a multiset of weighted literals.
        if let Some(obj) = formula.objective() {
            let mut canon: Vec<(u64, u32)> =
                obj.terms().iter().map(|&(c, l)| (c, l.code() as u32)).collect();
            let mut mapped: Vec<(u64, u32)> =
                obj.terms().iter().map(|&(c, l)| (c, self.apply(l).code() as u32)).collect();
            canon.sort_unstable();
            mapped.sort_unstable();
            if canon != mapped {
                return false;
            }
        }
        true
    }
}

impl fmt::Debug for LitPermutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let moved: Vec<String> = (0..self.num_vars())
            .filter_map(|i| {
                let v = Var::from_index(i);
                let img = self.apply(v.positive());
                (img != v.positive()).then(|| format!("{}->{img}", v.positive()))
            })
            .collect();
        write!(f, "LitPermutation[{}]", moved.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_images_validates_negation_consistency() {
        // Swap x0 with x1 but not their negations: inconsistent.
        let bad = vec![2, 1, 0, 3];
        assert!(LitPermutation::from_images(bad).is_none());
        let good = vec![2, 3, 0, 1];
        assert!(LitPermutation::from_images(good).is_some());
    }

    #[test]
    fn phase_shift_detection() {
        // x0 -> ~x0.
        let p = LitPermutation::from_images(vec![1, 0]).expect("valid");
        assert!(p.has_phase_shift());
        assert!(!LitPermutation::identity(1).has_phase_shift());
    }

    #[test]
    fn swap_preserves_symmetric_formula() {
        let mut f = PbFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause([a.positive(), b.positive()]);
        let swap = LitPermutation::from_var_swap(2, a, b);
        assert!(swap.preserves(&f));
        // Asymmetric formula: unit on a only.
        f.add_unit(a.positive());
        assert!(!swap.preserves(&f));
    }

    #[test]
    fn preserves_checks_pb_and_objective() {
        use sbgc_formula::{Objective, PbConstraint};
        let mut f = PbFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        let c = f.new_var();
        f.add_pb(PbConstraint::at_least(
            [(2, a.positive()), (2, b.positive()), (1, c.positive())],
            2,
        ));
        let swap_ab = LitPermutation::from_var_swap(3, a, b);
        let swap_ac = LitPermutation::from_var_swap(3, a, c);
        assert!(swap_ab.preserves(&f), "equal coefficients commute");
        assert!(!swap_ac.preserves(&f), "different coefficients must not");
        f.set_objective(Objective::minimize([(1, a.positive())]));
        assert!(!swap_ab.preserves(&f), "objective pins a");
    }

    #[test]
    fn support_and_compose() {
        let a = Var::from_index(0);
        let b = Var::from_index(1);
        let p = LitPermutation::from_var_swap(3, a, b);
        assert_eq!(p.support(), vec![a, b]);
        assert!(p.compose(&p).is_identity());
    }
}

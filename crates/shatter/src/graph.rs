//! Reduction of a CNF/PB formula to a vertex-colored graph whose
//! automorphisms are the formula's symmetries.

use sbgc_aut::ColoredGraph;
use sbgc_formula::PbFormula;
use std::collections::BTreeMap;

/// Color classes reserved by the construction; PB signature classes are
/// allocated after these.
const COLOR_LITERAL: u32 = 0;
const COLOR_CLAUSE: u32 = 1;
const COLOR_OBJECTIVE: u32 = 2;
const FIRST_DYNAMIC_COLOR: u32 = 3;

/// The colored graph built from a formula, with bookkeeping needed to map
/// automorphisms back to the formula.
#[derive(Debug)]
pub struct FormulaGraph {
    /// The colored graph. Vertices `0..2·num_vars` are the literal
    /// vertices, indexed by [`sbgc_formula::Lit::code`]; the remaining
    /// vertices represent clauses, PB constraints, coefficient groups, and
    /// the objective.
    pub graph: ColoredGraph,
    /// Number of formula variables (`2 × num_vars` literal vertices).
    pub num_vars: usize,
}

/// Builds the symmetry graph of `formula` (the PB-capable construction of
/// Aloul et al. 2004, with the efficient same-color literal encoding of
/// Aloul et al. 2003):
///
/// * two same-colored vertices per variable (its literals), joined by a
///   Boolean-consistency edge;
/// * binary clauses as single literal–literal edges, longer clauses as a
///   clause vertex adjacent to its literals;
/// * each PB constraint as a constraint vertex colored by its
///   `(coefficient multiset, bound)` signature; uniform-coefficient
///   constraints connect directly to their literals, mixed-coefficient
///   constraints go through per-coefficient group vertices;
/// * the objective (if present) as a single distinguished vertex (so
///   symmetries never alter the optimization target).
///
/// # Example
///
/// ```
/// use sbgc_formula::PbFormula;
/// use sbgc_shatter::formula_graph;
///
/// let mut f = PbFormula::new();
/// let a = f.new_var().positive();
/// let b = f.new_var().positive();
/// f.add_clause([a, b]);
/// let fg = formula_graph(&f);
/// // 4 literal vertices; binary clause adds no vertex.
/// assert_eq!(fg.graph.num_vertices(), 4);
/// // consistency edges (2) + clause edge (1)
/// assert_eq!(fg.graph.num_edges(), 3);
/// ```
pub fn formula_graph(formula: &PbFormula) -> FormulaGraph {
    let n = formula.num_vars();
    let mut colors: Vec<u32> = vec![COLOR_LITERAL; 2 * n];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut next_vertex = 2 * n;
    let mut next_color = FIRST_DYNAMIC_COLOR;
    // Signature -> color for PB constraint classes and coefficient classes.
    let mut pb_colors: BTreeMap<(Vec<u64>, u64), u32> = BTreeMap::new();
    let mut coeff_colors: BTreeMap<u64, u32> = BTreeMap::new();

    // Boolean consistency edges.
    for v in 0..n {
        edges.push((2 * v, 2 * v + 1));
    }

    // Clauses.
    for clause in formula.clauses() {
        let lits = clause.literals();
        match lits.len() {
            0 => {}
            1 => {
                // A unit clause distinguishes its literal: a private
                // marker vertex with the clause color.
                let marker = next_vertex;
                next_vertex += 1;
                colors.push(COLOR_CLAUSE);
                edges.push((marker, lits[0].code()));
            }
            2 => edges.push((lits[0].code(), lits[1].code())),
            _ => {
                let cv = next_vertex;
                next_vertex += 1;
                colors.push(COLOR_CLAUSE);
                for &l in lits {
                    edges.push((cv, l.code()));
                }
            }
        }
    }

    // PB constraints.
    for pb in formula.pb_constraints() {
        let mut coeffs: Vec<u64> = pb.terms().iter().map(|&(a, _)| a).collect();
        coeffs.sort_unstable();
        let uniform = coeffs.windows(2).all(|w| w[0] == w[1]);
        let sig = (coeffs, pb.rhs());
        let color = *pb_colors.entry(sig).or_insert_with(|| {
            let c = next_color;
            next_color += 1;
            c
        });
        let cv = next_vertex;
        next_vertex += 1;
        colors.push(color);
        if uniform {
            for &(_, l) in pb.terms() {
                edges.push((cv, l.code()));
            }
        } else {
            // One group vertex per distinct coefficient value.
            let mut groups: BTreeMap<u64, usize> = BTreeMap::new();
            for &(a, l) in pb.terms() {
                let gv = *groups.entry(a).or_insert_with(|| {
                    let v = next_vertex;
                    next_vertex += 1;
                    let gcolor = *coeff_colors.entry(a).or_insert_with(|| {
                        let c = next_color;
                        next_color += 1;
                        c
                    });
                    colors.push(gcolor);
                    edges.push((cv, v));
                    v
                });
                edges.push((gv, l.code()));
            }
        }
    }

    // Objective.
    if let Some(obj) = formula.objective() {
        let ov = next_vertex;
        next_vertex += 1;
        colors.push(COLOR_OBJECTIVE);
        let uniform = obj.terms().windows(2).all(|w| w[0].0 == w[1].0);
        if uniform {
            for &(_, l) in obj.terms() {
                edges.push((ov, l.code()));
            }
        } else {
            let mut groups: BTreeMap<u64, usize> = BTreeMap::new();
            for &(a, l) in obj.terms() {
                let gv = *groups.entry(a).or_insert_with(|| {
                    let v = next_vertex;
                    next_vertex += 1;
                    let gcolor = *coeff_colors.entry(a).or_insert_with(|| {
                        let c = next_color;
                        next_color += 1;
                        c
                    });
                    colors.push(gcolor);
                    edges.push((ov, v));
                    v
                });
                edges.push((gv, l.code()));
            }
        }
    }

    let graph = ColoredGraph::from_edges(next_vertex, edges, Some(colors));
    FormulaGraph { graph, num_vars: n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::{Objective, PbConstraint, Var};

    #[test]
    fn long_clause_gets_a_vertex() {
        let mut f = PbFormula::new();
        let lits: Vec<_> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_clause(lits);
        let fg = formula_graph(&f);
        assert_eq!(fg.graph.num_vertices(), 7); // 6 literals + 1 clause
        assert_eq!(fg.graph.num_edges(), 3 + 3); // consistency + clause
    }

    #[test]
    fn unit_clause_distinguishes_literal() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        let b = f.new_var();
        let _ = b;
        f.add_unit(a);
        let fg = formula_graph(&f);
        // The marker vertex breaks the symmetry between the two variables.
        let group = sbgc_aut::automorphisms(&fg.graph);
        // Variables cannot swap (a is pinned by the unit marker), but each
        // variable's phase shift is still an automorphism of the graph
        // *structure* for the untouched variable b.
        assert!(group.generators().iter().all(|g| g.apply(a.code()) == a.code()));
    }

    #[test]
    fn pb_signature_coloring_separates_bounds() {
        let mut f = PbFormula::new();
        let lits: Vec<_> = f.new_vars(4).into_iter().map(Var::positive).collect();
        f.add_pb(PbConstraint::cardinality([lits[0], lits[1]], 1));
        f.add_pb(PbConstraint::cardinality([lits[2], lits[3]], 2));
        let fg = formula_graph(&f);
        // Two constraint vertices with different colors (different rhs).
        let c1 = fg.graph.color(8);
        let c2 = fg.graph.color(9);
        assert_ne!(c1, c2);
    }

    #[test]
    fn mixed_coefficients_get_group_vertices() {
        let mut f = PbFormula::new();
        let lits: Vec<_> = f.new_vars(2).into_iter().map(Var::positive).collect();
        f.add_pb(PbConstraint::at_least([(2, lits[0]), (1, lits[1])], 2));
        let fg = formula_graph(&f);
        // 4 literal vertices + 1 constraint + 2 coefficient groups.
        assert_eq!(fg.graph.num_vertices(), 7);
    }

    #[test]
    fn objective_vertex_present() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.set_objective(Objective::minimize([(1, a)]));
        let fg = formula_graph(&f);
        assert_eq!(fg.graph.num_vertices(), 3);
        assert_eq!(fg.graph.color(2), COLOR_OBJECTIVE);
    }

    #[test]
    fn symmetric_clause_graph_has_swap_automorphism() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause([a, b]);
        let fg = formula_graph(&f);
        let group = sbgc_aut::automorphisms(&fg.graph);
        // Swapping the two variables is a symmetry; so are the simultaneous
        // phase shifts allowed by the clause structure.
        assert!(group.order_u128().expect("small") >= 2);
        assert!(group.generators().iter().any(|g| g.apply(a.code()) == b.code()));
    }
}

//! End-to-end soundness of the Shatter flow: adding instance-dependent
//! SBPs never changes satisfiability or the optimal objective value.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbgc_formula::{Lit, Objective, PbConstraint, PbFormula, Var};
use sbgc_pb::{optimize, solve_decision, Budget, SolverKind};
use sbgc_shatter::{shatter, SbpConstruction, SbpScope, ShatterOptions};

fn random_formula(n: usize, seed: u64, with_objective: bool) -> PbFormula {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = PbFormula::with_vars(n);
    for _ in 0..rng.gen_range(1..2 * n) {
        let k = rng.gen_range(1..=3.min(n));
        let mut lits = Vec::with_capacity(k);
        for _ in 0..k {
            lits.push(Var::from_index(rng.gen_range(0..n)).lit(rng.gen_bool(0.5)));
        }
        f.add_clause(lits);
    }
    for _ in 0..rng.gen_range(0..=2) {
        let k = rng.gen_range(2..=n);
        let mut lits: Vec<Lit> = Vec::with_capacity(k);
        for _ in 0..k {
            lits.push(Var::from_index(rng.gen_range(0..n)).positive());
        }
        let bound = rng.gen_range(1..=k as i64);
        f.add_pb(PbConstraint::at_least(lits.into_iter().map(|l| (1, l)), bound));
    }
    if with_objective {
        f.set_objective(Objective::minimize((0..n).map(|i| (1, Var::from_index(i).positive()))));
    }
    f
}

#[test]
fn sbps_preserve_satisfiability() {
    let mut sat_count = 0;
    for seed in 0..60u64 {
        let f = random_formula(6, seed, false);
        let before = solve_decision(&f, SolverKind::PbsII, &Budget::unlimited()).is_sat();
        let mut g = f.clone();
        let report = shatter(&mut g, &ShatterOptions::default());
        let after = solve_decision(&g, SolverKind::PbsII, &Budget::unlimited()).is_sat();
        assert_eq!(before, after, "seed {seed} ({report:?})");
        if before {
            sat_count += 1;
        }
    }
    assert!(sat_count > 10, "suite too skewed: {sat_count} SAT");
}

#[test]
fn sbps_preserve_optimum() {
    for seed in 100..140u64 {
        let f = random_formula(5, seed, true);
        let before = optimize(&f, SolverKind::PbsII, &Budget::unlimited()).value();
        let mut g = f.clone();
        let _ = shatter(&mut g, &ShatterOptions::default());
        let after = optimize(&g, SolverKind::PbsII, &Budget::unlimited()).value();
        assert_eq!(before, after, "seed {seed}");
    }
}

#[test]
fn both_constructions_preserve_satisfiability() {
    for construction in [SbpConstruction::EfficientLinear, SbpConstruction::NaiveQuadratic] {
        for seed in 200..230u64 {
            let f = random_formula(5, seed, false);
            let before = solve_decision(&f, SolverKind::Galena, &Budget::unlimited()).is_sat();
            let mut g = f.clone();
            let _ = shatter(&mut g, &ShatterOptions { construction, ..Default::default() });
            let after = solve_decision(&g, SolverKind::Galena, &Budget::unlimited()).is_sat();
            assert_eq!(before, after, "seed {seed} {construction:?}");
        }
    }
}

#[test]
fn pigeonhole_speedup_in_conflicts() {
    // The classic symmetric family: PHP(n+1, n). SBPs should cut the
    // conflict count substantially (the paper's headline effect).
    let holes = 6;
    let pigeons = holes + 1;
    let mut f = PbFormula::new();
    let var = |p: usize, h: usize| Var::from_index(p * holes + h);
    let _ = f.new_vars(pigeons * holes);
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| var(p, h).positive()));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                f.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    let conflicts = |formula: &PbFormula| {
        let mut opt = sbgc_pb::PbEngine::from_formula(
            formula,
            SolverKind::PbsII.engine_config().expect("cdcl"),
        );
        assert!(opt.solve().is_unsat());
        opt.stats().conflicts
    };
    let plain = conflicts(&f);
    let mut g = f.clone();
    let report = shatter(&mut g, &ShatterOptions::default());
    assert!(report.num_generators > 0, "PHP is full of symmetries");
    let broken = conflicts(&g);
    assert!(broken * 2 < plain, "SBPs should at least halve conflicts: {broken} vs {plain}");
}

#[test]
fn generator_pair_scope_preserves_satisfiability() {
    for seed in 300..330u64 {
        let f = random_formula(5, seed, false);
        let before = solve_decision(&f, SolverKind::PbsII, &Budget::unlimited()).is_sat();
        let mut g = f.clone();
        let opts = ShatterOptions { scope: SbpScope::GeneratorsAndPairs, ..Default::default() };
        let report = shatter(&mut g, &opts);
        let after = solve_decision(&g, SolverKind::PbsII, &Budget::unlimited()).is_sat();
        assert_eq!(before, after, "seed {seed}");
        // Pairs scope never yields fewer predicates than generators alone.
        assert!(report.sbp.permutations >= report.num_generators);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_shatter_preserves_decision(n in 2usize..6, seed in any::<u64>()) {
        let f = random_formula(n, seed, false);
        let before = solve_decision(&f, SolverKind::Pueblo, &Budget::unlimited()).is_sat();
        let mut g = f.clone();
        let _ = shatter(&mut g, &ShatterOptions::default());
        let after = solve_decision(&g, SolverKind::Pueblo, &Budget::unlimited()).is_sat();
        prop_assert_eq!(before, after);
    }
}

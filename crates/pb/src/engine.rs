//! The CDCL engine extended with counter-based pseudo-Boolean propagation.

use crate::config::{EngineConfig, RestartPolicy};
use crate::explain::FalseTerm;
use sbgc_formula::{Assignment, Clause, Lit, PbConstraint, PbFormula, Var};
use sbgc_obs::{Counter, Recorder, SearchCounters};
use sbgc_proof::ProofLogger;
use sbgc_sat::{Budget, ExhaustReason, GlueEma, Luby, SharingConfig, SharingHandle, SolveOutcome};
use std::fmt;

/// Backjumps discarding more than this many decision levels are replaced
/// by a single chronological step when `EngineConfig::chrono` is on.
const CHRONO_THRESHOLD: u32 = 100;
/// Conflicts before the first rephase; the interval widens linearly.
const REPHASE_BASE: u64 = 1000;
/// Learned clauses at or below this LBD are never deleted by tiered
/// reduction (the "core" tier).
const CORE_LBD: u32 = 2;

/// Search statistics of a [`PbEngine`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PbStats {
    /// Number of decisions.
    pub decisions: u64,
    /// Number of conflicts.
    pub conflicts: u64,
    /// Number of propagated literals.
    pub propagations: u64,
    /// Number of restarts.
    pub restarts: u64,
    /// Number of learned clauses.
    pub learned: u64,
    /// Number of learned clauses deleted.
    pub deleted: u64,
    /// Number of conflicts whose analysis touched a PB constraint.
    pub pb_conflicts: u64,
    /// Total literals across all learned clauses (after minimization).
    pub learned_literals: u64,
    /// Sum of LBD (glue) values across all learned clauses.
    pub lbd_sum: u64,
    /// Learned clauses exported into the portfolio's shared clause pool.
    pub exported: u64,
    /// Clauses imported from the portfolio's shared clause pool.
    pub imported: u64,
    /// Number of database-reduction (`reduce_db`) passes.
    pub reductions: u64,
    /// Number of dead clause slots physically reclaimed by arena
    /// compaction (see [`PbEngine::set_compaction`]).
    pub reclaimed: u64,
    /// Why the most recent budgeted solve stopped early, if it did.
    /// `None` after a definitive SAT/UNSAT answer (and before any solve).
    /// Unlike the counters above this is a status, not a monotone count;
    /// it is reset at the start of every solve call.
    pub exhaust: Option<ExhaustReason>,
}

impl From<PbStats> for SearchCounters {
    fn from(s: PbStats) -> SearchCounters {
        SearchCounters {
            decisions: s.decisions,
            conflicts: s.conflicts,
            propagations: s.propagations,
            restarts: s.restarts,
            learned: s.learned,
            deleted: s.deleted,
            pb_conflicts: s.pb_conflicts,
            learned_literals: s.learned_literals,
            lbd_sum: s.lbd_sum,
            exported: s.exported,
            imported: s.imported,
        }
    }
}

impl PbStats {
    /// Flushes the delta between `self` and the snapshot `prev` into the
    /// recorder's typed counters, returning the new snapshot.
    fn flush_delta(self, prev: PbStats, recorder: &Recorder) -> PbStats {
        recorder.add(Counter::Decisions, self.decisions - prev.decisions);
        recorder.add(Counter::Conflicts, self.conflicts - prev.conflicts);
        recorder.add(Counter::Propagations, self.propagations - prev.propagations);
        recorder.add(Counter::Restarts, self.restarts - prev.restarts);
        recorder.add(Counter::Learned, self.learned - prev.learned);
        recorder.add(Counter::Deleted, self.deleted - prev.deleted);
        recorder.add(Counter::PbConflicts, self.pb_conflicts - prev.pb_conflicts);
        recorder.add(Counter::LearnedLiterals, self.learned_literals - prev.learned_literals);
        recorder.add(Counter::LbdSum, self.lbd_sum - prev.lbd_sum);
        recorder.add(Counter::Exported, self.exported - prev.exported);
        recorder.add(Counter::Imported, self.imported - prev.imported);
        self
    }
}

const NO_POS: usize = usize::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Reason {
    Decision,
    Clause(u32),
    Pb(u32),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VarValue {
    Undef,
    True,
    False,
}

#[derive(Clone, Debug)]
struct StoredClause {
    lits: Vec<Lit>,
    learned: bool,
    deleted: bool,
    activity: f64,
    /// LBD at learn/import time; 0 for original clauses.
    lbd: u32,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

#[derive(Clone, Debug)]
struct StoredPb {
    terms: Vec<(u64, Lit)>,
    rhs: u64,
    coeff_sum: u64,
    /// `Σ_{ℓ not false} aᵢ − rhs`; negative means violated.
    slack: i64,
}

/// Indexed max-heap over variable activities (VSIDS order).
#[derive(Clone, Debug, Default)]
struct ActivityHeap {
    heap: Vec<u32>,
    position: Vec<usize>,
}

impl ActivityHeap {
    fn with_capacity(n: usize) -> Self {
        ActivityHeap { heap: Vec::with_capacity(n), position: vec![NO_POS; n] }
    }

    fn insert(&mut self, var: usize, activity: &[f64]) {
        if self.position[var] != NO_POS {
            return;
        }
        self.position[var] = self.heap.len();
        self.heap.push(var as u32);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0] as usize;
        let last = self.heap.pop().expect("non-empty");
        self.position[top] = NO_POS;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn increased(&mut self, var: usize, activity: &[f64]) {
        let pos = self.position[var];
        if pos != NO_POS {
            self.sift_up(pos, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, a: &[f64]) {
        while i > 0 {
            let p = (i - 1) / 2;
            if a[self.heap[i] as usize] <= a[self.heap[p] as usize] {
                break;
            }
            self.swap(i, p);
            i = p;
        }
    }

    fn sift_down(&mut self, mut i: usize, a: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut m = i;
            if l < self.heap.len() && a[self.heap[l] as usize] > a[self.heap[m] as usize] {
                m = l;
            }
            if r < self.heap.len() && a[self.heap[r] as usize] > a[self.heap[m] as usize] {
                m = r;
            }
            if m == i {
                break;
            }
            self.swap(i, m);
            i = m;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a] as usize] = a;
        self.position[self.heap[b] as usize] = b;
    }
}

/// A CDCL solver over mixed CNF + pseudo-Boolean formulas.
///
/// PB constraints are propagated with per-constraint slack counters;
/// conflicts and propagations caused by PB constraints are explained by
/// implied CNF clauses (the PBS scheme), with the explanation subset chosen
/// by the configured [`crate::ExplainStrategy`]. Learned constraints are
/// CNF clauses.
///
/// Use [`crate::optimize`] to minimize an objective; the engine itself
/// solves the decision problem.
pub struct PbEngine {
    config: EngineConfig,
    num_vars: usize,
    clauses: Vec<StoredClause>,
    watches: Vec<Vec<Watcher>>,
    pbs: Vec<StoredPb>,
    /// `occ[p.code()]` lists `(pb_index, coeff)` for constraints containing
    /// the literal `!p` — i.e. the constraints whose slack drops when `p`
    /// becomes true.
    occ: Vec<Vec<(u32, u64)>>,
    values: Vec<VarValue>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail_pos: Vec<usize>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: ActivityHeap,
    saved_phase: Vec<bool>,
    cla_inc: f64,
    max_learnts: f64,
    ok: bool,
    /// Physically reclaim tombstoned clauses after each reduce_db pass;
    /// disabled only by tests comparing against the lazy-deletion baseline.
    compact: bool,
    /// Running estimate of the bytes held by the clause arena and the PB
    /// store (slots + term buffers). Tombstoned clauses count until
    /// compaction frees them; the PB store never shrinks.
    arena_bytes: u64,
    stats: PbStats,
    recorder: Recorder,
    /// Stats snapshot already flushed to the recorder.
    flushed: PbStats,
    proof: Option<Box<dyn ProofLogger>>,
    seen: Vec<bool>,
    /// Assumption core of the last assumption-relative UNSAT answer.
    final_core: Vec<Lit>,
    /// LBD trend tracker for `RestartPolicy::AdaptiveLbd`.
    glue: GlueEma,
    /// Portfolio clause-sharing handle; `None` for sequential solving.
    sharing: Option<SharingHandle>,
    /// Generation-stamped scratch for `compute_lbd` (indexed by level).
    lbd_stamp: Vec<u64>,
    lbd_gen: u64,
    /// Conflict count at which the next rephase fires.
    next_rephase: u64,
    rephase_count: u64,
}

impl PbEngine {
    /// Creates an empty engine over `num_vars` variables with the given
    /// configuration.
    pub fn new(num_vars: usize, config: EngineConfig) -> Self {
        let mut engine = PbEngine {
            config,
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * num_vars],
            pbs: Vec::new(),
            occ: vec![Vec::new(); 2 * num_vars],
            values: vec![VarValue::Undef; num_vars],
            level: vec![0; num_vars],
            reason: vec![Reason::Decision; num_vars],
            trail_pos: vec![NO_POS; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            heap: ActivityHeap::with_capacity(num_vars),
            saved_phase: vec![false; num_vars],
            cla_inc: 1.0,
            max_learnts: 0.0,
            ok: true,
            compact: true,
            arena_bytes: 0,
            stats: PbStats::default(),
            recorder: Recorder::disabled(),
            flushed: PbStats::default(),
            proof: None,
            seen: vec![false; num_vars],
            final_core: Vec::new(),
            glue: GlueEma::default(),
            sharing: None,
            lbd_stamp: vec![0; num_vars + 1],
            lbd_gen: 0,
            next_rephase: REPHASE_BASE,
            rephase_count: 0,
        };
        engine.diversify();
        engine
    }

    /// Deterministically perturbs the initial phases and activities from
    /// `config.seed`. Seed 0 is the identity — sequential presets are
    /// untouched. Nonzero seeds randomize initial phases and add a tiny
    /// activity jitter (far below one VSIDS bump) that only reorders
    /// zero-activity ties, sending portfolio workers down different
    /// branches of the same search tree.
    fn diversify(&mut self) {
        if self.config.seed == 0 {
            return;
        }
        let mut state = self.config.seed;
        let mut next = move || {
            // SplitMix64: cheap, well-mixed, dependency-free.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for v in 0..self.num_vars {
            let bits = next();
            self.saved_phase[v] = bits & 1 == 1;
            self.activity[v] = (bits >> 11) as f64 * (1e-6 / (1u64 << 53) as f64);
        }
    }

    /// Builds an engine from a formula (objective, if any, is ignored —
    /// use [`crate::optimize`] for optimization).
    pub fn from_formula(formula: &PbFormula, config: EngineConfig) -> Self {
        let mut engine = PbEngine::new(formula.num_vars(), config);
        for clause in formula.clauses() {
            engine.add_clause(clause.literals().iter().copied());
        }
        for pb in formula.pb_constraints() {
            engine.add_pb(pb.clone());
        }
        engine
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Statistics so far.
    pub fn stats(&self) -> PbStats {
        self.stats
    }

    /// Attaches a [`Recorder`]; subsequent solve calls flush counter
    /// deltas to it every 64 conflicts (the budget-check stride) and on
    /// solve exit. The default disabled recorder costs one branch per
    /// stride.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Attaches a DRAT [`ProofLogger`] covering the engine's *clausal*
    /// path: root-simplified clause additions, learned clauses, database
    /// deletions and the final empty clause.
    ///
    /// The resulting proof is RUP-checkable only when the input is pure
    /// CNF. PB constraints are not logged, and learned clauses whose
    /// derivation resolved on a PB explanation are consequences of those
    /// constraints — not of the clause database alone — so proofs of mixed
    /// inputs must be treated as `Unchecked` (see `sbgc-core`'s
    /// certificate layer).
    pub fn set_proof_logger(&mut self, logger: Box<dyn ProofLogger>) {
        self.proof = Some(logger);
    }

    /// Enables or disables physical arena compaction after each
    /// `reduce_db` pass (default: enabled). Disabling restores the
    /// historical tombstone-only behavior.
    pub fn set_compaction(&mut self, compact: bool) {
        self.compact = compact;
    }

    /// Attaches a portfolio clause-sharing handle. Good learned clauses
    /// are exported through it and peer clauses are imported at solve
    /// start and at every restart (root level only — the hot loop never
    /// touches the pool's lock).
    ///
    /// Imported clauses are re-logged through the attached [`ProofLogger`]
    /// as DRAT additions. That is sound when every worker in the race logs
    /// into the *same* shared, adds-only log: the exporter's addition
    /// precedes the importer's re-log (the pool mutex orders them), so the
    /// duplicate add is trivially RUP.
    pub fn set_sharing(&mut self, handle: SharingHandle) {
        self.sharing = Some(handle);
    }

    /// Overrides the learned-clause limit that triggers database
    /// reduction (test knob; the default is derived from the constraint
    /// count on the first solve).
    pub fn set_max_learnts(&mut self, max_learnts: f64) {
        self.max_learnts = max_learnts;
    }

    /// Total `StoredClause` slots in the arena, live or tombstoned. With
    /// compaction enabled this tracks [`PbEngine::live_clauses`].
    pub fn arena_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Estimated bytes held by the clause arena and the PB store (slot
    /// metadata plus literal/term buffers). Compared against
    /// [`Budget::with_max_memory`] on the stride-64 budget path.
    pub fn arena_bytes(&self) -> u64 {
        self.arena_bytes
    }

    fn clause_bytes(lits: &[Lit]) -> u64 {
        (std::mem::size_of::<StoredClause>() + std::mem::size_of_val(lits)) as u64
    }

    fn pb_bytes(terms: &[(u64, Lit)]) -> u64 {
        (std::mem::size_of::<StoredPb>() + std::mem::size_of_val(terms)) as u64
    }

    #[inline]
    fn proof_add(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.log_add(lits);
        }
    }

    /// Pushes any counter deltas accumulated since the last flush into the
    /// attached recorder. Solve calls flush on exit themselves; the
    /// portfolio calls this for workers that never entered a solve (their
    /// setup-time root propagations would otherwise go unreported).
    pub(crate) fn flush_recorder(&mut self) {
        self.flushed = self.stats.flush_delta(self.flushed, &self.recorder);
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> VarValue {
        match (self.values[l.var().index()], l.is_negated()) {
            (VarValue::Undef, _) => VarValue::Undef,
            (VarValue::True, false) | (VarValue::False, true) => VarValue::True,
            _ => VarValue::False,
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a CNF clause (backtracks to the root level first).
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable `>= num_vars`.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.backtrack_to(0);
        if !self.ok {
            return;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(l.var().index() < self.num_vars, "literal {l} out of range");
        }
        lits.sort_unstable();
        lits.dedup();
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return; // tautology
        }
        let before = lits.len();
        lits.retain(|&l| self.lit_value(l) != VarValue::False);
        if lits.iter().any(|&l| self.lit_value(l) == VarValue::True) {
            return;
        }
        if lits.len() != before {
            // The simplified clause is a derived (RUP) clause: its dropped
            // literals are root-falsified by earlier unit propagation.
            self.proof_add(&lits);
        }
        match lits.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(lits[0], Reason::Decision);
                if self.propagate().is_some() {
                    self.proof_add(&[]);
                    self.ok = false;
                }
            }
            _ => {
                self.attach_clause(lits, false);
            }
        }
    }

    /// Adds a pseudo-Boolean constraint (backtracks to the root level
    /// first). Constraints that are really clauses are routed to the clause
    /// store.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable `>= num_vars`.
    pub fn add_pb(&mut self, constraint: PbConstraint) {
        self.backtrack_to(0);
        if !self.ok {
            return;
        }
        if constraint.is_trivially_true() {
            return;
        }
        if constraint.is_trivially_false() {
            self.ok = false;
            return;
        }
        if constraint.is_clause() {
            self.add_clause(constraint.terms().iter().map(|&(_, l)| l));
            return;
        }
        for &(_, l) in constraint.terms() {
            assert!(l.var().index() < self.num_vars, "literal {l} out of range");
        }
        let coeff_sum = constraint.coefficient_sum();
        let idx = self.pbs.len() as u32;
        // Slack under the current (root-level) assignment.
        let mut slack = coeff_sum as i64 - constraint.rhs() as i64;
        for &(a, l) in constraint.terms() {
            self.occ[(!l).code()].push((idx, a));
            if self.lit_value(l) == VarValue::False {
                slack -= a as i64;
            }
        }
        self.arena_bytes += Self::pb_bytes(constraint.terms());
        self.pbs.push(StoredPb {
            terms: constraint.terms().to_vec(),
            rhs: constraint.rhs(),
            coeff_sum,
            slack,
        });
        if slack < 0 {
            self.ok = false;
            return;
        }
        // Root-level propagations implied by the new constraint.
        let forced: Vec<Lit> = self.pbs[idx as usize]
            .terms
            .iter()
            .filter(|&&(a, l)| {
                self.lit_value(l) == VarValue::Undef && a as i64 > self.pbs[idx as usize].slack
            })
            .map(|&(_, l)| l)
            .collect();
        for l in forced {
            if self.lit_value(l) == VarValue::Undef {
                self.enqueue(l, Reason::Pb(idx));
            }
        }
        if self.propagate().is_some() {
            self.ok = false;
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learned: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(Watcher { clause: cref, blocker: lits[1] });
        self.watches[lits[1].code()].push(Watcher { clause: cref, blocker: lits[0] });
        self.arena_bytes += Self::clause_bytes(&lits);
        self.clauses.push(StoredClause { lits, learned, deleted: false, activity: 0.0, lbd: 0 });
        cref
    }

    /// LBD ("literals block distance", glue): the number of distinct
    /// nonzero decision levels among the clause's literals. Computed with
    /// a generation-stamped scratch array, O(len) per clause.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_gen += 1;
        let mut lbd = 0u32;
        for &l in lits {
            let lvl = self.level[l.var().index()] as usize;
            if lvl != 0 && self.lbd_stamp[lvl] != self.lbd_gen {
                self.lbd_stamp[lvl] = self.lbd_gen;
                lbd += 1;
            }
        }
        lbd.max(1)
    }

    fn enqueue(&mut self, l: Lit, reason: Reason) {
        debug_assert_eq!(self.lit_value(l), VarValue::Undef);
        let v = l.var().index();
        self.values[v] = if l.is_negated() { VarValue::False } else { VarValue::True };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail_pos[v] = self.trail.len();
        if self.config.phase_saving {
            self.saved_phase[v] = !l.is_negated();
        }
        self.trail.push(l);
        self.stats.propagations += 1;
        // Apply PB slack updates *at assignment time* so they are exactly
        // paired with the restores in `backtrack_to`, even when a conflict
        // short-circuits queue processing.
        for i in 0..self.occ[l.code()].len() {
            let (idx, a) = self.occ[l.code()][i];
            self.pbs[idx as usize].slack -= a as i64;
        }
    }

    /// Propagates clauses and PB constraints to fixpoint.
    fn propagate(&mut self) -> Option<Reason> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            if let Some(confl) = self.propagate_clauses(p) {
                return Some(confl);
            }
            if let Some(confl) = self.propagate_pbs(p) {
                return Some(confl);
            }
        }
        None
    }

    fn propagate_clauses(&mut self, p: Lit) -> Option<Reason> {
        let false_lit = !p;
        let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
        let mut i = 0;
        let mut conflict = None;
        while i < ws.len() {
            let w = ws[i];
            if self.lit_value(w.blocker) == VarValue::True {
                i += 1;
                continue;
            }
            let cref = w.clause as usize;
            if self.clauses[cref].deleted {
                ws.swap_remove(i);
                continue;
            }
            {
                let c = &mut self.clauses[cref];
                if c.lits[0] == false_lit {
                    c.lits.swap(0, 1);
                }
            }
            let first = self.clauses[cref].lits[0];
            if self.lit_value(first) == VarValue::True {
                ws[i].blocker = first;
                i += 1;
                continue;
            }
            let len = self.clauses[cref].lits.len();
            let mut moved = false;
            for k in 2..len {
                let cand = self.clauses[cref].lits[k];
                if self.lit_value(cand) != VarValue::False {
                    self.clauses[cref].lits.swap(1, k);
                    self.watches[cand.code()].push(Watcher { clause: w.clause, blocker: first });
                    ws.swap_remove(i);
                    moved = true;
                    break;
                }
            }
            if moved {
                continue;
            }
            if self.lit_value(first) == VarValue::False {
                conflict = Some(Reason::Clause(w.clause));
                self.qhead = self.trail.len();
                break;
            }
            self.enqueue(first, Reason::Clause(w.clause));
            i += 1;
        }
        self.watches[false_lit.code()] = ws;
        conflict
    }

    fn propagate_pbs(&mut self, p: Lit) -> Option<Reason> {
        // Slacks were already updated in `enqueue`; here we detect
        // violations and propagate forced literals in the constraints
        // containing !p.
        let affected: Vec<u32> = self.occ[p.code()].iter().map(|&(idx, _)| idx).collect();
        for idx in affected {
            let idx_usize = idx as usize;
            let slack = self.pbs[idx_usize].slack;
            if slack < 0 {
                return Some(Reason::Pb(idx));
            }
            // Propagate unassigned literals with coefficient > slack.
            let mut forced: Vec<Lit> = Vec::new();
            for &(coeff, l) in &self.pbs[idx_usize].terms {
                if coeff as i64 > slack && self.lit_value(l) == VarValue::Undef {
                    forced.push(l);
                }
            }
            for l in forced {
                if self.lit_value(l) == VarValue::Undef {
                    self.enqueue(l, Reason::Pb(idx));
                }
            }
        }
        None
    }

    fn backtrack_to(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let p = self.trail[i];
            let v = p.var().index();
            // Restore PB slacks.
            for &(idx, a) in &self.occ[p.code()] {
                self.pbs[idx as usize].slack += a as i64;
            }
            self.values[v] = VarValue::Undef;
            self.reason[v] = Reason::Decision;
            self.trail_pos[v] = NO_POS;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = bound;
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.increased(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: usize) {
        let c = &mut self.clauses[cref];
        if !c.learned {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Materializes the literals to resolve on for a reason.
    ///
    /// For a PB reason, builds the explanation clause for `implied` (or the
    /// conflict explanation when `implied` is `None`), using only literals
    /// falsified before the implied literal.
    fn reason_lits(&mut self, reason: Reason, implied: Option<Lit>) -> Vec<Lit> {
        match reason {
            Reason::Decision => panic!("decision has no reason"),
            Reason::Clause(cref) => {
                self.bump_clause(cref as usize);
                self.clauses[cref as usize].lits.clone()
            }
            Reason::Pb(idx) => {
                self.stats.pb_conflicts += 1;
                let pb = &self.pbs[idx as usize];
                let cutoff = implied.map(|l| self.trail_pos[l.var().index()]).unwrap_or(usize::MAX);
                let mut false_terms = Vec::new();
                let mut propagated_coeff = 0;
                for &(a, l) in &pb.terms {
                    if Some(l) == implied {
                        propagated_coeff = a;
                        continue;
                    }
                    if self.lit_value(l) == VarValue::False {
                        let pos = self.trail_pos[l.var().index()];
                        if pos < cutoff {
                            false_terms.push(FalseTerm { lit: l, coeff: a, trail_pos: pos });
                        }
                    }
                }
                let chosen = self.config.explain.select(
                    pb.rhs,
                    pb.coeff_sum,
                    &false_terms,
                    propagated_coeff,
                );
                let mut lits = Vec::with_capacity(chosen.len() + 1);
                if let Some(l) = implied {
                    lits.push(l);
                }
                lits.extend(chosen);
                lits
            }
        }
    }

    /// First-UIP conflict analysis; returns the learned clause (asserting
    /// literal first) and the backjump level.
    ///
    /// Takes the conflict's literals already materialized (see
    /// [`PbEngine::reason_lits`]) — the caller must build them *before*
    /// any chronological pre-backtrack, because PB explanations are
    /// computed from the assignment at conflict time.
    fn analyze(&mut self, conflict_lits: Vec<Lit>) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut lits = conflict_lits;

        loop {
            for &q in &lits {
                if p == Some(q) {
                    continue;
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            lits = self.reason_lits(self.reason[v], p);
        }
        learnt[0] = !p.expect("asserting literal");

        // Local minimization: drop literals implied by the rest.
        let mut minimized = Vec::with_capacity(learnt.len());
        for (i, &q) in learnt.iter().enumerate() {
            if i == 0 {
                minimized.push(q);
                continue;
            }
            let removable = match self.reason[q.var().index()] {
                Reason::Decision => false,
                Reason::Clause(cref) => self.clauses[cref as usize]
                    .lits
                    .iter()
                    .all(|&x| x == !q || self.seen_or_root(x)),
                // PB explanations are computed lazily; skip minimization.
                Reason::Pb(_) => false,
            };
            if !removable {
                minimized.push(q);
            }
        }
        for &q in &learnt {
            self.seen[q.var().index()] = false;
        }

        let mut bt = 0;
        let mut max_i = 1;
        for (i, &q) in minimized.iter().enumerate().skip(1) {
            let lvl = self.level[q.var().index()];
            if lvl > bt {
                bt = lvl;
                max_i = i;
            }
        }
        if minimized.len() > 1 {
            minimized.swap(1, max_i);
        }
        (minimized, bt)
    }

    fn seen_or_root(&self, l: Lit) -> bool {
        let v = l.var().index();
        self.seen[v] || self.level[v] == 0
    }

    fn reduce_db(&mut self) {
        // Tiered mode protects the "core" tier (glue clauses, LBD ≤ 2)
        // from deletion entirely and ranks the rest worst-first by
        // (LBD desc, activity asc); classic mode is pure activity.
        let tiered = self.config.tiered_reduce;
        let mut candidates: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learned && !c.deleted && c.lits.len() > 2 && !(tiered && c.lbd <= CORE_LBD)
            })
            .collect();
        if tiered {
            candidates.sort_by(|&a, &b| {
                let (ca, cb) = (&self.clauses[a], &self.clauses[b]);
                cb.lbd.cmp(&ca.lbd).then(
                    ca.activity.partial_cmp(&cb.activity).unwrap_or(std::cmp::Ordering::Equal),
                )
            });
        } else {
            candidates.sort_by(|&a, &b| {
                self.clauses[a]
                    .activity
                    .partial_cmp(&self.clauses[b].activity)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        let locked: std::collections::HashSet<u32> = self
            .trail
            .iter()
            .filter_map(|l| match self.reason[l.var().index()] {
                Reason::Clause(c) => Some(c),
                _ => None,
            })
            .collect();
        let half = candidates.len() / 2;
        for &i in candidates.iter().take(half) {
            if locked.contains(&(i as u32)) {
                continue;
            }
            if let Some(p) = self.proof.as_mut() {
                p.log_delete(&self.clauses[i].lits);
            }
            self.clauses[i].deleted = true;
            self.stats.deleted += 1;
        }
        self.stats.reductions += 1;
        if self.compact {
            self.compact_db();
        }
    }

    /// Physically removes tombstoned clauses, remapping the clause
    /// references held by watch lists and trail reasons. Runs right after
    /// `reduce_db` (propagation at fixpoint; locked clauses were kept, so
    /// every `Reason::Clause` on the trail stays live). PB constraints are
    /// unaffected — `Reason::Pb` indexes a separate store that never
    /// shrinks.
    fn compact_db(&mut self) {
        const DEAD: u32 = u32::MAX;
        let mut remap = vec![DEAD; self.clauses.len()];
        let mut next = 0u32;
        for (i, c) in self.clauses.iter().enumerate() {
            if !c.deleted {
                remap[i] = next;
                next += 1;
            }
        }
        let dead = self.clauses.len() - next as usize;
        if dead == 0 {
            return;
        }
        self.stats.reclaimed += dead as u64;
        self.clauses.retain(|c| !c.deleted);
        self.arena_bytes = self.clauses.iter().map(|c| Self::clause_bytes(&c.lits)).sum::<u64>()
            + self.pbs.iter().map(|p| Self::pb_bytes(&p.terms)).sum::<u64>();
        for ws in &mut self.watches {
            ws.retain_mut(|w| {
                let m = remap[w.clause as usize];
                w.clause = m;
                m != DEAD
            });
        }
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index();
            if let Reason::Clause(r) = self.reason[v] {
                debug_assert_ne!(remap[r as usize], DEAD, "trail reason must stay live");
                self.reason[v] = Reason::Clause(remap[r as usize]);
            }
        }
    }

    /// Debug sweep of the clause-database invariants: every watcher
    /// references a live clause and watches its first two literals, and
    /// every clausal trail reason is a live clause containing the implied
    /// literal. Intended for tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        for (code, ws) in self.watches.iter().enumerate() {
            let watched = Lit::from_code(code);
            for w in ws {
                let c = &self.clauses[w.clause as usize];
                if c.deleted {
                    continue; // lazily dropped on the next propagation visit
                }
                assert!(
                    c.lits[0] == watched || c.lits[1] == watched,
                    "watcher for {watched} does not watch clause {}",
                    w.clause
                );
            }
        }
        for &l in &self.trail {
            if let Reason::Clause(r) = self.reason[l.var().index()] {
                let c = &self.clauses[r as usize];
                assert!(!c.deleted, "trail reason {r} is deleted");
                assert!(c.lits.contains(&l), "reason clause {r} lacks implied literal {l}");
            }
        }
    }

    /// Drains the shared pool at a root-level boundary (solve start or
    /// restart), attaching every peer clause. No-op without a sharing
    /// handle or when the generation stamp shows nothing new.
    ///
    /// Sound for mixed CNF+PB inputs because every worker in a race solves
    /// the *identical* formula: a peer's learned clause is entailed by
    /// that formula even when its derivation resolved on PB explanations.
    fn import_shared(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let batch = match self.sharing.as_mut() {
            Some(h) if h.has_new() => h.take_new(),
            _ => return,
        };
        for (lits, lbd) in batch {
            if !self.ok {
                return;
            }
            self.import_clause(lits, lbd);
        }
    }

    /// Attaches one imported clause at the root level: satisfied clauses
    /// are skipped, root-falsified literals stripped, units enqueued and
    /// propagated. The (possibly strengthened) clause is logged as a DRAT
    /// addition — see [`PbEngine::set_sharing`] for why that is sound.
    fn import_clause(&mut self, mut lits: Vec<Lit>, lbd: u32) {
        if lits.iter().any(|&l| self.lit_value(l) == VarValue::True) {
            return;
        }
        lits.retain(|&l| self.lit_value(l) != VarValue::False);
        self.stats.imported += 1;
        self.proof_add(&lits);
        match lits.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(lits[0], Reason::Decision);
                if self.propagate().is_some() {
                    self.proof_add(&[]);
                    self.ok = false;
                }
            }
            _ => {
                let cref = self.attach_clause(lits, true);
                self.clauses[cref as usize].lbd = lbd;
            }
        }
    }

    /// Rephasing schedule (splr/CaDiCaL style): at widening conflict
    /// intervals, rotate through inverting all saved phases, resetting
    /// them to the default polarity, and leaving them untouched (a
    /// stabilization window). Runs at restarts, where flipping phases is
    /// free.
    fn maybe_rephase(&mut self) {
        if !self.config.rephase || self.stats.conflicts < self.next_rephase {
            return;
        }
        self.rephase_count += 1;
        self.next_rephase = self.stats.conflicts + REPHASE_BASE * self.rephase_count;
        match self.rephase_count % 3 {
            1 => {
                for p in &mut self.saved_phase {
                    *p = !*p;
                }
            }
            2 => {
                for p in &mut self.saved_phase {
                    *p = false;
                }
            }
            _ => {} // stabilize: keep the phases the search settled on
        }
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.values[v] == VarValue::Undef {
                let phase = self.saved_phase[v];
                return Some(Var::from_index(v).lit(!phase));
            }
        }
        None
    }

    fn next_restart_limit(&self, restarts: u64, luby: &mut Luby) -> u64 {
        self.config.restart.next_limit(restarts, luby)
    }

    /// Runs the search under `budget` and unit *assumptions*: the
    /// assumption literals are placed as the first decisions, and the
    /// search reports UNSAT if they cannot all hold. Unlike a genuine
    /// UNSAT result, an assumption-relative UNSAT leaves the engine usable
    /// for further queries (with different assumptions) and keeps every
    /// learned clause — the incremental-SAT interface of MiniSat-family
    /// solvers.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        self.final_core.clear();
        self.solve_inner(assumptions, budget)
    }

    /// After an UNSAT answer from [`PbEngine::solve_with_assumptions`]:
    /// a subset of the assumptions that is already unsatisfiable together
    /// with the constraints (the *assumption core*, per MiniSat's
    /// `analyze_final`). Empty when the formula is UNSAT outright.
    pub fn assumption_core(&self) -> &[Lit] {
        &self.final_core
    }

    /// Derives the core: walks reasons backwards from the failed
    /// assumption `p` (whose negation holds on the trail), collecting the
    /// assumption decisions it depends on.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            return core; // ¬p is formula-implied; p alone is a core
        }
        self.seen[p.var().index()] = true;
        let start = self.trail_lim[0];
        for i in (start..self.trail.len()).rev() {
            let q = self.trail[i];
            let v = q.var().index();
            if !self.seen[v] {
                continue;
            }
            match self.reason[v] {
                // Decisions below the failure point are assumptions; they
                // enter the core as assumed (q is on the trail as assumed).
                Reason::Decision => core.push(q),
                r => {
                    let lits = self.reason_lits(r, Some(q));
                    for &x in &lits {
                        if x != q && self.level[x.var().index()] > 0 {
                            self.seen[x.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
        core
    }

    /// Runs the search under `budget`.
    pub fn solve_with_budget(&mut self, budget: &Budget) -> SolveOutcome {
        self.solve_inner(&[], budget)
    }

    fn solve_inner(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        self.stats.exhaust = None;
        let out = self.search(assumptions, budget);
        if self.recorder.is_enabled() {
            self.flush_recorder();
        }
        out
    }

    fn search(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        // Arm the wall-clock countdown (no-op if an outer entry point, e.g.
        // the optimization loop, already armed it).
        let budget = budget.started();
        if budget.cancelled() {
            // A lost portfolio race; easy solves must not sneak past the
            // stride-64 check below.
            self.stats.exhaust = Some(ExhaustReason::Cancelled);
            return SolveOutcome::Unknown;
        }
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.proof_add(&[]);
            self.ok = false;
            return SolveOutcome::Unsat;
        }
        // Pick up everything peers learned before this solve began.
        self.import_shared();
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        for v in 0..self.num_vars {
            if self.values[v] == VarValue::Undef {
                self.heap.insert(v, &self.activity);
            }
        }
        if self.max_learnts == 0.0 {
            self.max_learnts = ((self.clauses.len() + self.pbs.len()) as f64 / 3.0).max(1000.0);
        }
        let mut luby = Luby::new();
        let mut conflicts_until_restart = self.next_restart_limit(0, &mut luby);
        let mut budget_check = 0u32;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if self.decision_level() == 0 {
                    self.proof_add(&[]);
                    self.ok = false;
                    return SolveOutcome::Unsat;
                }
                // Materialize the conflict's literals *before* any
                // chronological pre-backtrack: PB conflict explanations
                // are computed from the assignment at conflict time.
                let confl_lits = self.reason_lits(confl, None);
                if self.config.chrono {
                    // Guard for out-of-order trails: if the conflict has
                    // no literal at the current level, undo the levels
                    // above its maximum before analyzing.
                    let maxl =
                        confl_lits.iter().map(|l| self.level[l.var().index()]).max().unwrap_or(0);
                    if maxl == 0 {
                        self.proof_add(&[]);
                        self.ok = false;
                        return SolveOutcome::Unsat;
                    }
                    if maxl < self.decision_level() {
                        self.backtrack_to(maxl);
                    }
                }
                let (learnt, bt) = self.analyze(confl_lits);
                let lbd = self.compute_lbd(&learnt);
                self.glue.observe(lbd);
                self.stats.lbd_sum += lbd as u64;
                self.proof_add(&learnt);
                if let Some(h) = self.sharing.as_ref() {
                    if h.export(&learnt, lbd) {
                        self.stats.exported += 1;
                    }
                }
                // Chronological backtracking: a deep backjump discards a
                // still-consistent partial assignment; step back a single
                // level instead and keep it (the learned clause is unit
                // there too — its asserting literal was the only one at
                // the conflict level).
                let bt = if self.config.chrono
                    && learnt.len() > 1
                    && self.decision_level() - bt > CHRONO_THRESHOLD
                {
                    self.decision_level() - 1
                } else {
                    bt
                };
                self.backtrack_to(bt);
                self.stats.learned += 1;
                self.stats.learned_literals += learnt.len() as u64;
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], Reason::Decision);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true);
                    self.clauses[cref as usize].lbd = lbd;
                    self.bump_clause(cref as usize);
                    self.enqueue(asserting, Reason::Clause(cref));
                }
                self.var_inc /= self.config.var_decay;
                self.cla_inc /= 0.999;

                budget_check += 1;
                if budget_check >= 64 {
                    budget_check = 0;
                    if let Some(reason) =
                        budget.exhaust_reason(self.stats.conflicts, self.arena_bytes)
                    {
                        self.stats.exhaust = Some(reason);
                        return SolveOutcome::Unknown;
                    }
                    // Same stride as the budget check: live readers see
                    // counter progress without a per-conflict branch.
                    if self.recorder.is_enabled() {
                        self.flush_recorder();
                    }
                } else if budget.conflicts_exhausted(self.stats.conflicts) {
                    self.stats.exhaust = Some(ExhaustReason::Conflicts);
                    return SolveOutcome::Unknown;
                }
            } else {
                if conflicts_until_restart == 0 {
                    // Adaptive mode restarts only when the glue trend says
                    // the search degraded; fixed schedules always restart.
                    let fire = match self.config.restart {
                        RestartPolicy::AdaptiveLbd { .. } => self.glue.restart_indicated(),
                        _ => true,
                    };
                    if fire {
                        self.stats.restarts += 1;
                        conflicts_until_restart =
                            self.next_restart_limit(self.stats.restarts, &mut luby);
                        self.backtrack_to(0);
                        self.glue.restarted();
                        self.import_shared();
                        self.maybe_rephase();
                        if !self.ok {
                            return SolveOutcome::Unsat;
                        }
                    } else {
                        // Re-check the trend after a short stride.
                        conflicts_until_restart = 8;
                    }
                }
                let live = (self.stats.learned - self.stats.deleted) as f64;
                if live >= self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
                // Re-establish assumptions as the first decision levels.
                if (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        VarValue::True => {
                            // Already satisfied: open a dummy level so the
                            // level-to-assumption mapping stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        VarValue::False => {
                            // The assumption set is unsatisfiable with the
                            // current constraint store; this is an
                            // assumption-relative UNSAT (engine stays ok).
                            self.final_core = self.analyze_final(p);
                            self.backtrack_to(0);
                            return SolveOutcome::Unsat;
                        }
                        VarValue::Undef => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, Reason::Decision);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        let model = Assignment::from_bools(
                            self.values.iter().map(|&v| v == VarValue::True),
                        );
                        return SolveOutcome::Sat(model);
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, Reason::Decision);
                    }
                }
            }
        }
    }

    /// Runs the search with an unlimited budget.
    pub fn solve(&mut self) -> SolveOutcome {
        self.solve_with_budget(&Budget::unlimited())
    }

    /// Adds the blocking clause forbidding the given total model (used by
    /// enumeration-style callers and tests).
    pub fn block_model(&mut self, model: &Assignment) {
        let lits: Vec<Lit> = model.iter_assigned().map(|(v, b)| v.lit(b)).collect();
        self.add_clause(lits);
    }

    /// Number of stored (non-deleted) clauses, for tests and diagnostics.
    pub fn live_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Number of live *learned* clauses — lemmas the engine has derived
    /// and not yet deleted. Across assumption queries this measures the
    /// state a persistent session retains from earlier ladder steps.
    pub fn live_learned(&self) -> usize {
        self.clauses.iter().filter(|c| c.learned && !c.deleted).count()
    }

    /// Number of stored PB constraints.
    pub fn num_pb_constraints(&self) -> usize {
        self.pbs.len()
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Exports the live learned clauses that pass `config`'s share filter
    /// (LBD and length caps) — the lemmas worth persisting in a solve
    /// checkpoint. Every returned clause is derived by resolution from the
    /// clause database alone (assumptions enter the search as decisions,
    /// never as axioms), so it is entailed by the formula plus whatever
    /// root units had been added when it was learned.
    pub fn export_learned(&self, config: SharingConfig) -> Vec<(Vec<Lit>, u32)> {
        self.clauses
            .iter()
            .filter(|c| {
                c.learned
                    && !c.deleted
                    && !c.lits.is_empty()
                    && c.lits.len() <= config.max_len
                    && c.lbd >= 1
                    && c.lbd <= config.max_lbd
            })
            .map(|c| (c.lits.clone(), c.lbd))
            .collect()
    }

    /// Imports externally supplied learned clauses (a resumed checkpoint's
    /// retained lemmas) at the root level, exactly like clauses taken from
    /// a sharing pool: satisfied clauses are skipped, root-falsified
    /// literals stripped, units propagated. Only sound when each clause is
    /// entailed by the current formula — for checkpoint clauses that means
    /// the bounds committed before they were learned have been re-committed
    /// first (see `docs/ROBUSTNESS.md`).
    pub fn import_learned(&mut self, clauses: &[(Vec<Lit>, u32)]) {
        self.backtrack_to(0);
        for (lits, lbd) in clauses {
            if !self.ok {
                return;
            }
            self.import_clause(lits.clone(), *lbd);
        }
    }
}

impl fmt::Debug for PbEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PbEngine(vars={}, clauses={}, pbs={}, conflicts={})",
            self.num_vars,
            self.clauses.len(),
            self.pbs.len(),
            self.stats.conflicts
        )
    }
}

// Re-export Clause usage for doctests.
#[doc(hidden)]
pub type _ClauseAlias = Clause;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use sbgc_formula::Objective;

    fn default_engine(f: &PbFormula) -> PbEngine {
        PbEngine::from_formula(f, EngineConfig::default())
    }

    #[test]
    fn pure_cnf_still_works() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause([a, b]);
        f.add_clause([!a]);
        let mut e = default_engine(&f);
        match e.solve() {
            SolveOutcome::Sat(m) => assert!(m.satisfies(b)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn exactly_one_propagates() {
        let mut f = PbFormula::new();
        let lits: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_exactly_one(&lits);
        f.add_unit(lits[1]);
        let mut e = default_engine(&f);
        match e.solve() {
            SolveOutcome::Sat(m) => {
                assert!(m.satisfies(lits[1]));
                assert!(m.satisfies(!lits[0]));
                assert!(m.satisfies(!lits[2]));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn cardinality_conflict_is_unsat() {
        // x0 + x1 + x2 >= 2 with x0, x1 false is UNSAT with x2 alone.
        let mut f = PbFormula::new();
        let lits: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_pb(PbConstraint::cardinality(lits.clone(), 2));
        f.add_unit(!lits[0]);
        f.add_unit(!lits[1]);
        let mut e = default_engine(&f);
        assert!(e.solve().is_unsat());
    }

    #[test]
    fn weighted_propagation() {
        // 3*x0 + x1 + x2 >= 3: forcing x1,x2 insufficient — x0 forced.
        let mut f = PbFormula::new();
        let lits: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_pb(PbConstraint::at_least([(3, lits[0]), (1, lits[1]), (1, lits[2])], 3));
        f.add_unit(!lits[1]);
        let mut e = default_engine(&f);
        match e.solve() {
            SolveOutcome::Sat(m) => assert!(m.satisfies(lits[0]), "x0 must be forced"),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn pb_pigeonhole_unsat() {
        // n+1 pigeons in n holes using exactly-one PB constraints per pigeon
        // and at-most-one per hole: UNSAT, exercises PB conflict analysis.
        let holes = 4;
        let pigeons = holes + 1;
        let mut f = PbFormula::new();
        let var = |p: usize, h: usize| Var::from_index(p * holes + h);
        let _ = f.new_vars(pigeons * holes);
        for p in 0..pigeons {
            let row: Vec<Lit> = (0..holes).map(|h| var(p, h).positive()).collect();
            f.add_exactly_one(&row);
        }
        for h in 0..holes {
            let col: Vec<Lit> = (0..pigeons).map(|p| var(p, h).positive()).collect();
            f.add_at_most_one(&col);
        }
        for strategy in [
            crate::ExplainStrategy::AllFalse,
            crate::ExplainStrategy::GreedyCoefficient,
            crate::ExplainStrategy::GreedyRecency,
        ] {
            let config = EngineConfig { explain: strategy, ..EngineConfig::default() };
            let mut e = PbEngine::from_formula(&f, config);
            assert!(e.solve().is_unsat(), "{strategy:?}");
        }
    }

    #[test]
    fn model_satisfies_mixed_formula() {
        let mut f = PbFormula::new();
        let lits: Vec<Lit> = f.new_vars(5).into_iter().map(Var::positive).collect();
        f.add_pb(PbConstraint::at_least(
            [(2, lits[0]), (3, lits[1]), (1, lits[2]), (2, lits[3])],
            4,
        ));
        f.add_at_most_one(&[lits[0], lits[4]]);
        f.add_clause([!lits[1], lits[4]]);
        let mut e = default_engine(&f);
        match e.solve() {
            SolveOutcome::Sat(m) => assert!(f.is_satisfied_by(&m)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn objective_is_ignored_by_engine() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_clause([a]);
        f.set_objective(Objective::minimize([(1, a)]));
        let mut e = default_engine(&f);
        assert!(e.solve().is_sat());
    }

    #[test]
    fn block_model_enumerates() {
        let mut f = PbFormula::new();
        let lits: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_exactly_one(&lits);
        let mut e = default_engine(&f);
        let mut count = 0;
        while let SolveOutcome::Sat(m) = e.solve() {
            assert!(f.is_satisfied_by(&m));
            e.block_model(&m);
            count += 1;
            assert!(count <= 3, "too many models");
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn memory_budget_stops_with_reason() {
        let holes = 6;
        let pigeons = holes + 1;
        let mut f = PbFormula::new();
        let var = |p: usize, h: usize| Var::from_index(p * holes + h);
        let _ = f.new_vars(pigeons * holes);
        for p in 0..pigeons {
            let row: Vec<Lit> = (0..holes).map(|h| var(p, h).positive()).collect();
            f.add_exactly_one(&row);
        }
        for h in 0..holes {
            let col: Vec<Lit> = (0..pigeons).map(|p| var(p, h).positive()).collect();
            f.add_at_most_one(&col);
        }
        let mut e = default_engine(&f);
        // A 1-byte cap trips at the first stride-64 check.
        let b = Budget::unlimited().with_max_memory(1);
        assert!(matches!(e.solve_with_budget(&b), SolveOutcome::Unknown));
        assert_eq!(e.stats().exhaust, Some(ExhaustReason::Memory));
        assert!(e.arena_bytes() > 1);
        // A definitive follow-up answer clears the status.
        assert!(e.solve().is_unsat());
        assert_eq!(e.stats().exhaust, None);
    }

    #[test]
    fn trivially_false_pb() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_pb(PbConstraint::at_least([(1, a)], 5));
        let mut e = default_engine(&f);
        assert!(e.solve().is_unsat());
    }

    #[test]
    fn geometric_restart_limit_saturates_at_high_counts() {
        // Regression: the limit used to be computed as a raw f64→u64 cast
        // with an unclamped i32 exponent; verify it now grows monotonically
        // and pins to u64::MAX instead of wrapping or going to garbage.
        let config = EngineConfig {
            restart: RestartPolicy::Geometric { first: 100, factor: 1.5 },
            ..EngineConfig::default()
        };
        let e = PbEngine::new(1, config);
        let mut luby = Luby::new();
        let mut prev = 0u64;
        for r in [0u64, 1, 10, 100, 400, 1_000, 10_000, 1 << 40, u64::MAX] {
            let lim = e.next_restart_limit(r, &mut luby);
            assert!(lim >= prev, "limit must be monotone: {lim} after {prev} (restarts={r})");
            assert!(lim >= 100, "limit must never drop below `first` (restarts={r})");
            prev = lim;
        }
        assert_eq!(e.next_restart_limit(10_000, &mut luby), u64::MAX);
        assert_eq!(e.next_restart_limit(u64::MAX, &mut luby), u64::MAX);
    }

    /// PHP(holes+1, holes) as pure clauses (no PB constraints).
    fn clausal_pigeonhole(holes: usize) -> (usize, Vec<Vec<Lit>>) {
        let pigeons = holes + 1;
        let var = |p: usize, h: usize| Var::from_index(p * holes + h);
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for p in 0..pigeons {
            clauses.push((0..holes).map(|h| var(p, h).positive()).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    clauses.push(vec![var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        (pigeons * holes, clauses)
    }

    #[test]
    fn pure_cnf_refutation_proof_checks() {
        let (n, clauses) = clausal_pigeonhole(4);
        let shared = sbgc_proof::SharedProof::new();
        let mut e = PbEngine::new(n, EngineConfig::default());
        e.set_proof_logger(Box::new(shared.clone()));
        for c in &clauses {
            e.add_clause(c.iter().copied());
        }
        assert!(e.solve().is_unsat());
        e.check_invariants();
        let proof = shared.take();
        assert!(proof.num_adds() > 0);
        sbgc_proof::check_drat(n, &clauses, &proof).expect("engine proof must check");
    }

    /// Mixed CNF+PB pigeonhole (UNSAT), the engine's hardest small case.
    fn mixed_pigeonhole(holes: usize) -> PbFormula {
        let pigeons = holes + 1;
        let mut f = PbFormula::new();
        let var = |p: usize, h: usize| Var::from_index(p * holes + h);
        let _ = f.new_vars(pigeons * holes);
        for p in 0..pigeons {
            let row: Vec<Lit> = (0..holes).map(|h| var(p, h).positive()).collect();
            f.add_exactly_one(&row);
        }
        for h in 0..holes {
            let col: Vec<Lit> = (0..pigeons).map(|p| var(p, h).positive()).collect();
            f.add_at_most_one(&col);
        }
        f
    }

    #[test]
    fn modern_knobs_preserve_answers() {
        let unsat = mixed_pigeonhole(4);
        let mut sat = PbFormula::new();
        let lits: Vec<Lit> = sat.new_vars(6).into_iter().map(Var::positive).collect();
        sat.add_pb(PbConstraint::at_least(
            [(2, lits[0]), (3, lits[1]), (1, lits[2]), (2, lits[3])],
            4,
        ));
        sat.add_at_most_one(&[lits[0], lits[4]]);
        sat.add_clause([!lits[1], lits[5]]);
        let policies = [
            RestartPolicy::Luby { base: 8 },
            RestartPolicy::Geometric { first: 8, factor: 1.5 },
            RestartPolicy::AdaptiveLbd { min_interval: 16 },
        ];
        for &restart in &policies {
            for &(chrono, rephase, tiered) in
                &[(true, false, false), (false, true, true), (true, true, true)]
            {
                let config = EngineConfig {
                    restart,
                    chrono,
                    rephase,
                    tiered_reduce: tiered,
                    ..EngineConfig::default()
                };
                let mut e = PbEngine::from_formula(&unsat, config);
                e.set_max_learnts(20.0);
                assert!(e.solve().is_unsat(), "{restart:?} chrono={chrono} tiered={tiered}");
                e.check_invariants();
                let mut e = PbEngine::from_formula(&sat, config);
                match e.solve() {
                    SolveOutcome::Sat(m) => assert!(sat.is_satisfied_by(&m), "{restart:?}"),
                    other => panic!("expected SAT with {restart:?}, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn sharing_relays_clauses_between_engines() {
        use sbgc_sat::{SharedClausePool, SharingConfig};
        let f = mixed_pigeonhole(4);
        let pool = SharedClausePool::new();
        let mut a = PbEngine::from_formula(&f, EngineConfig::default());
        a.set_sharing(pool.handle(0, SharingConfig::default()));
        assert!(a.solve().is_unsat());
        assert!(a.stats().exported > 0, "refutation must export glue clauses");
        assert_eq!(a.stats().imported, 0, "nothing to import from an empty pool");
        // A second engine starting later sees A's full history at solve
        // start and must still reach the same answer.
        let mut b = PbEngine::from_formula(&f, EngineConfig::default());
        b.set_sharing(pool.handle(1, SharingConfig::default()));
        assert!(b.solve().is_unsat());
        assert!(b.stats().imported > 0, "peer clauses must be imported");
        b.check_invariants();
    }

    #[test]
    fn imported_clauses_are_drat_logged_and_check() {
        use sbgc_proof::{AddsOnlyProofLogger, SharedProof};
        use sbgc_sat::{SharedClausePool, SharingConfig};
        let (n, clauses) = clausal_pigeonhole(4);
        let pool = SharedClausePool::new();
        let shared = SharedProof::new();
        // Worker A refutes and exports; worker B imports A's clauses and
        // re-logs them. Both log additions into ONE shared log (deletions
        // suppressed), so the combined proof must check.
        for source in 0..2 {
            let mut e = PbEngine::new(n, EngineConfig::default());
            e.set_proof_logger(Box::new(AddsOnlyProofLogger::new(shared.clone())));
            e.set_sharing(pool.handle(source, SharingConfig::default()));
            for c in &clauses {
                e.add_clause(c.iter().copied());
            }
            assert!(e.solve().is_unsat());
            if source == 1 {
                assert!(e.stats().imported > 0, "second worker must import");
            }
        }
        let proof = shared.take();
        assert_eq!(proof.num_deletes(), 0);
        sbgc_proof::check_drat(n, &clauses, &proof)
            .expect("proof with imported clauses must check");
    }

    #[test]
    fn compaction_reclaims_tombstones() {
        let (n, clauses) = clausal_pigeonhole(5);
        let mut e = PbEngine::new(n, EngineConfig::default());
        e.set_max_learnts(10.0);
        for c in &clauses {
            e.add_clause(c.iter().copied());
        }
        assert!(e.solve().is_unsat());
        let st = e.stats();
        assert!(st.reductions > 0);
        assert!(st.deleted > 0);
        assert_eq!(st.reclaimed, st.deleted, "every tombstone must be reclaimed");
        assert_eq!(e.arena_clauses(), e.live_clauses());
        e.check_invariants();
    }

    #[test]
    fn compaction_equivalence_with_mixed_constraints() {
        // The PB store is untouched by compaction; mixed instances must
        // give the same answer with and without it.
        let holes = 4;
        let pigeons = holes + 1;
        let mut f = PbFormula::new();
        let var = |p: usize, h: usize| Var::from_index(p * holes + h);
        let _ = f.new_vars(pigeons * holes);
        for p in 0..pigeons {
            let row: Vec<Lit> = (0..holes).map(|h| var(p, h).positive()).collect();
            f.add_exactly_one(&row);
        }
        for h in 0..holes {
            let col: Vec<Lit> = (0..pigeons).map(|p| var(p, h).positive()).collect();
            f.add_at_most_one(&col);
        }
        for compact in [true, false] {
            let mut e = default_engine(&f);
            e.set_compaction(compact);
            e.set_max_learnts(10.0);
            assert!(e.solve().is_unsat(), "compact={compact}");
            e.check_invariants();
            if !compact {
                assert_eq!(e.stats().reclaimed, 0);
            }
        }
    }

    #[test]
    fn exported_learned_clauses_respect_the_share_filter() {
        let f = mixed_pigeonhole(4);
        let mut e = default_engine(&f);
        assert!(e.solve().is_unsat());
        let tight = SharingConfig { max_lbd: 2, max_len: 3 };
        for (lits, lbd) in e.export_learned(tight) {
            assert!(!lits.is_empty());
            assert!(lits.len() <= 3);
            assert!((1..=2).contains(&lbd));
        }
        let loose = e.export_learned(SharingConfig { max_lbd: u32::MAX, max_len: usize::MAX });
        assert!(!loose.is_empty(), "a refutation must leave live learned clauses");
        assert!(loose.len() >= e.export_learned(tight).len());
    }

    #[test]
    fn import_learned_round_trips_into_a_fresh_engine() {
        let f = mixed_pigeonhole(4);
        let mut a = default_engine(&f);
        assert!(a.solve().is_unsat());
        let batch = a.export_learned(SharingConfig::default());
        assert!(!batch.is_empty());
        // A fresh engine on the same formula can absorb the batch at the
        // root and must still reach the same answer.
        let mut b = default_engine(&f);
        b.import_learned(&batch);
        assert!(b.stats().imported > 0, "round-tripped clauses must be imported");
        assert!(b.solve().is_unsat());
        b.check_invariants();
    }
}

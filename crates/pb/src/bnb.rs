//! A generic branch-and-bound 0-1 ILP solver without conflict learning —
//! the stand-in for the commercial CPLEX baseline.
//!
//! The paper observes that CPLEX behaves qualitatively differently from the
//! specialized 0-1 ILP solvers: it has no Boolean conflict learning, and
//! extra constraints (such as SBPs) burden rather than help it. This solver
//! reproduces that algorithmic class: depth-first branch and bound with
//! constraint propagation, chronological backtracking, objective-based
//! pruning, and *no* learning. (A full LP-relaxation simplex bound is out
//! of scope; the partial-objective bound keeps the search generic-MIP-like.
//! See `DESIGN.md`.)

use crate::optimize::OptOutcome;
use sbgc_formula::{Assignment, Lit, Objective, PbFormula, Var};
use sbgc_sat::{Budget, SolveOutcome};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VarValue {
    Undef,
    True,
    False,
}

#[derive(Clone, Debug)]
struct BnbConstraint {
    /// `(coefficient, literal)` terms; clauses are coefficient-1, rhs-1.
    terms: Vec<(u64, Lit)>,
    /// `Σ_{ℓ not false} aᵢ − rhs`; negative means violated.
    slack: i64,
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    trail_len: usize,
    decision: Lit,
    flipped: bool,
}

/// Depth-first branch-and-bound 0-1 ILP solver (no learning).
///
/// Build with [`BnbSolver::new`], then call [`BnbSolver::run`] to minimize
/// the formula's objective (or [`BnbSolver::run_decision`] for pure
/// feasibility).
pub struct BnbSolver {
    num_vars: usize,
    constraints: Vec<BnbConstraint>,
    /// `occ[p.code()]` lists `(constraint, coeff)` pairs whose slack drops
    /// when `p` becomes true.
    occ: Vec<Vec<(u32, u64)>>,
    values: Vec<VarValue>,
    trail: Vec<Lit>,
    frames: Vec<Frame>,
    qhead: usize,
    objective: Option<Objective>,
    /// Branch order: objective variables first, then the rest.
    branch_order: Vec<usize>,
    ok: bool,
    nodes: u64,
    violations: u64,
}

impl BnbSolver {
    /// Builds a solver from a formula (clauses and PB constraints are
    /// treated uniformly as linear inequalities).
    pub fn new(formula: &PbFormula) -> Self {
        let num_vars = formula.num_vars();
        let mut solver = BnbSolver {
            num_vars,
            constraints: Vec::new(),
            occ: vec![Vec::new(); 2 * num_vars],
            values: vec![VarValue::Undef; num_vars],
            trail: Vec::new(),
            frames: Vec::new(),
            qhead: 0,
            objective: formula.objective().cloned(),
            branch_order: Vec::new(),
            ok: true,
            nodes: 0,
            violations: 0,
        };
        for clause in formula.clauses() {
            let terms: Vec<(u64, Lit)> = clause.literals().iter().map(|&l| (1, l)).collect();
            solver.add_constraint(terms, 1);
        }
        for pb in formula.pb_constraints() {
            solver.add_constraint(pb.terms().to_vec(), pb.rhs());
        }
        // Branch order: objective variables in input order, then the rest.
        let mut in_objective = vec![false; num_vars];
        if let Some(obj) = &solver.objective {
            for &(_, l) in obj.terms() {
                in_objective[l.var().index()] = true;
            }
        }
        solver.branch_order = (0..num_vars)
            .filter(|&v| in_objective[v])
            .chain((0..num_vars).filter(|&v| !in_objective[v]))
            .collect();
        solver
    }

    fn add_constraint(&mut self, terms: Vec<(u64, Lit)>, rhs: u64) {
        if rhs == 0 {
            return;
        }
        let coeff_sum: u64 = terms.iter().map(|&(a, _)| a).sum();
        if coeff_sum < rhs {
            self.ok = false;
            return;
        }
        let idx = self.constraints.len() as u32;
        for &(a, l) in &terms {
            self.occ[(!l).code()].push((idx, a));
        }
        self.constraints.push(BnbConstraint { terms, slack: coeff_sum as i64 - rhs as i64 });
    }

    /// Number of search nodes (decisions) explored so far.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Number of constraint violations (dead ends) encountered.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> VarValue {
        match (self.values[l.var().index()], l.is_negated()) {
            (VarValue::Undef, _) => VarValue::Undef,
            (VarValue::True, false) | (VarValue::False, true) => VarValue::True,
            _ => VarValue::False,
        }
    }

    fn assign(&mut self, l: Lit) {
        debug_assert_eq!(self.lit_value(l), VarValue::Undef);
        let v = l.var().index();
        self.values[v] = if l.is_negated() { VarValue::False } else { VarValue::True };
        self.trail.push(l);
        for i in 0..self.occ[l.code()].len() {
            let (idx, a) = self.occ[l.code()][i];
            self.constraints[idx as usize].slack -= a as i64;
        }
    }

    fn undo_to(&mut self, trail_len: usize) {
        while self.trail.len() > trail_len {
            let p = self.trail.pop().expect("non-empty");
            for i in 0..self.occ[p.code()].len() {
                let (idx, a) = self.occ[p.code()][i];
                self.constraints[idx as usize].slack += a as i64;
            }
            self.values[p.var().index()] = VarValue::Undef;
        }
        self.qhead = self.qhead.min(self.trail.len());
    }

    /// Propagates forced literals; returns `false` on violation.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let affected: Vec<u32> = self.occ[p.code()].iter().map(|&(i, _)| i).collect();
            for idx in affected {
                let slack = self.constraints[idx as usize].slack;
                if slack < 0 {
                    self.violations += 1;
                    return false;
                }
                let mut forced = Vec::new();
                for &(a, l) in &self.constraints[idx as usize].terms {
                    if a as i64 > slack && self.lit_value(l) == VarValue::Undef {
                        forced.push(l);
                    }
                }
                for l in forced {
                    if self.lit_value(l) == VarValue::Undef {
                        self.assign(l);
                    }
                }
            }
        }
        true
    }

    /// Chronological backtrack: flip the deepest unflipped decision.
    /// Returns `false` when the tree is exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some(frame) = self.frames.pop() {
            self.undo_to(frame.trail_len);
            if !frame.flipped {
                let flipped = !frame.decision;
                self.frames.push(Frame {
                    trail_len: frame.trail_len,
                    decision: flipped,
                    flipped: true,
                });
                self.assign(flipped);
                self.qhead = self.trail.len() - 1;
                return true;
            }
        }
        false
    }

    fn pick_branch_var(&self) -> Option<usize> {
        self.branch_order.iter().copied().find(|&v| self.values[v] == VarValue::Undef)
    }

    fn objective_lower_bound(&self) -> u64 {
        self.objective
            .as_ref()
            .map(|obj| {
                obj.terms()
                    .iter()
                    .filter(|&&(_, l)| self.lit_value(l) == VarValue::True)
                    .map(|&(c, _)| c)
                    .sum()
            })
            .unwrap_or(0)
    }

    fn model(&self) -> Assignment {
        Assignment::from_bools(self.values.iter().map(|&v| v == VarValue::True))
    }

    fn search(&mut self, budget: &Budget, best: &mut Option<(u64, Assignment)>) -> bool {
        // Returns true if the tree was exhausted (search complete), false on
        // budget exhaustion.
        if budget.cancelled() {
            return false;
        }
        let mut counter = 0u32;
        loop {
            counter += 1;
            if counter >= 512 {
                counter = 0;
                if budget.exhausted(self.violations) {
                    return false;
                }
            }
            let consistent = self.propagate();
            let pruned = consistent
                && best.as_ref().is_some_and(|(b, _)| self.objective_lower_bound() >= *b);
            if !consistent || pruned {
                if !self.backtrack() {
                    return true;
                }
                continue;
            }
            match self.pick_branch_var() {
                None => {
                    // Total, consistent assignment.
                    let model = self.model();
                    let value = self.objective_lower_bound();
                    let improved = best.as_ref().is_none_or(|(b, _)| value < *b);
                    if improved {
                        *best = Some((value, model));
                    }
                    if self.objective.is_none() {
                        // Decision problem: first solution suffices.
                        return true;
                    }
                    if !self.backtrack() {
                        return true;
                    }
                }
                Some(v) => {
                    self.nodes += 1;
                    // Try "false" first: keeps the objective low and mirrors
                    // a best-bound-ish dive of a generic MIP solver.
                    let decision = Var::from_index(v).negative();
                    self.frames.push(Frame {
                        trail_len: self.trail.len(),
                        decision,
                        flipped: false,
                    });
                    self.assign(decision);
                }
            }
        }
    }

    /// Minimizes the objective under `budget`.
    ///
    /// # Panics
    ///
    /// Panics if the formula had no objective (use
    /// [`BnbSolver::run_decision`]).
    pub fn run(&mut self, budget: &Budget) -> OptOutcome {
        assert!(self.objective.is_some(), "run() requires an objective");
        let budget = budget.started();
        if !self.ok {
            return OptOutcome::Infeasible;
        }
        self.undo_to(0);
        self.frames.clear();
        if !self.propagate() {
            return OptOutcome::Infeasible;
        }
        let mut best: Option<(u64, Assignment)> = None;
        let complete = self.search(&budget, &mut best);
        match (complete, best) {
            (true, Some((value, model))) => OptOutcome::Optimal { value, model },
            (true, None) => OptOutcome::Infeasible,
            (false, Some((value, model))) => OptOutcome::Feasible { value, model },
            (false, None) => OptOutcome::Unknown,
        }
    }

    /// Solves the pure decision problem under `budget`.
    pub fn run_decision(&mut self, budget: &Budget) -> SolveOutcome {
        let budget = budget.started();
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        self.objective = None;
        self.undo_to(0);
        self.frames.clear();
        if !self.propagate() {
            return SolveOutcome::Unsat;
        }
        let mut best: Option<(u64, Assignment)> = None;
        let complete = self.search(&budget, &mut best);
        match (complete, best) {
            (_, Some((_, model))) => SolveOutcome::Sat(model),
            (true, None) => SolveOutcome::Unsat,
            (false, None) => SolveOutcome::Unknown,
        }
    }
}

impl std::fmt::Debug for BnbSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BnbSolver(vars={}, constraints={}, nodes={})",
            self.num_vars,
            self.constraints.len(),
            self.nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::{Objective, PbConstraint};

    fn x(f: &mut PbFormula) -> Lit {
        f.new_var().positive()
    }

    #[test]
    fn decision_sat_and_unsat() {
        let mut f = PbFormula::new();
        let a = x(&mut f);
        let b = x(&mut f);
        f.add_clause([a, b]);
        let mut s = BnbSolver::new(&f);
        assert!(s.run_decision(&Budget::unlimited()).is_sat());

        f.add_unit(!a);
        f.add_unit(!b);
        let mut s = BnbSolver::new(&f);
        assert!(s.run_decision(&Budget::unlimited()).is_unsat());
    }

    #[test]
    fn optimizes_vertex_cover_triangle() {
        // Cover every edge of a triangle: minimize y0+y1+y2, each edge
        // constraint yi + yj >= 1; optimum 2.
        let mut f = PbFormula::new();
        let y: Vec<Lit> = (0..3).map(|_| x(&mut f)).collect();
        for (i, j) in [(0, 1), (1, 2), (0, 2)] {
            f.add_clause([y[i], y[j]]);
        }
        f.set_objective(Objective::minimize(y.iter().map(|&l| (1, l))));
        let mut s = BnbSolver::new(&f);
        match s.run(&Budget::unlimited()) {
            OptOutcome::Optimal { value, model } => {
                assert_eq!(value, 2);
                assert!(f.is_satisfied_by(&model));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn handles_weighted_pb() {
        // minimize 2a + 3b s.t. 2a + 3b >= 3 → optimum 3 (b alone).
        let mut f = PbFormula::new();
        let a = x(&mut f);
        let b = x(&mut f);
        f.add_pb(PbConstraint::at_least([(2, a), (3, b)], 3));
        f.set_objective(Objective::minimize([(2, a), (3, b)]));
        let mut s = BnbSolver::new(&f);
        match s.run(&Budget::unlimited()) {
            OptOutcome::Optimal { value, model } => {
                assert_eq!(value, 3);
                assert!(model.satisfies(b));
                assert!(model.satisfies(!a));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_objective_problem() {
        let mut f = PbFormula::new();
        let a = x(&mut f);
        f.add_unit(a);
        f.add_unit(!a);
        f.set_objective(Objective::minimize([(1, a)]));
        let mut s = BnbSolver::new(&f);
        assert!(s.run(&Budget::unlimited()).is_infeasible());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // A non-trivial feasible problem with a zero budget may return
        // Unknown or Feasible but never Infeasible.
        let mut f = PbFormula::new();
        let y: Vec<Lit> = (0..12).map(|_| x(&mut f)).collect();
        for i in 0..11 {
            f.add_clause([y[i], y[i + 1]]);
        }
        f.set_objective(Objective::minimize(y.iter().map(|&l| (1, l))));
        let mut s = BnbSolver::new(&f);
        let out = s.run(&Budget::unlimited().with_max_conflicts(0));
        assert!(!out.is_infeasible());
    }

    #[test]
    fn counts_nodes() {
        let mut f = PbFormula::new();
        let y: Vec<Lit> = (0..4).map(|_| x(&mut f)).collect();
        f.add_clause(y.clone());
        let mut s = BnbSolver::new(&f);
        let _ = s.run_decision(&Budget::unlimited());
        assert!(s.nodes() >= 1);
    }
}

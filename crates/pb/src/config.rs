//! Solver configurations and the named presets used in the experiments.

use crate::explain::ExplainStrategy;

// The restart schedule moved to `sbgc-sat` so both CDCL cores share the
// same policy type; re-exported here so existing imports keep working.
pub use sbgc_sat::RestartPolicy;

/// Tunable parameters of the CDCL-PB engine.
///
/// The named constructors reproduce the solver line-up of the paper's
/// Tables 3–5; see [`SolverKind`]. The modern-CDCL knobs (`chrono`,
/// `rephase`, `tiered_reduce`, adaptive restarts) all default *off* so the
/// presets keep reproducing the paper's solvers; the portfolio turns them
/// on per worker for diversification (see [`crate::portfolio_configs`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// How PB conflicts/propagations are explained as clauses.
    pub explain: ExplainStrategy,
    /// Whether to reuse the last assigned polarity at decisions.
    pub phase_saving: bool,
    /// Restart schedule.
    pub restart: RestartPolicy,
    /// VSIDS activity decay (0 < decay < 1; higher = slower forgetting).
    pub var_decay: f64,
    /// Diversification seed. `0` (the default) leaves initial phases and
    /// activities untouched — the exact behavior of the sequential presets.
    /// A nonzero seed deterministically perturbs the initial phases and
    /// breaks VSIDS ties differently, so portfolio workers running the same
    /// preset explore different parts of the search tree.
    pub seed: u64,
    /// Chronological backtracking: after a conflict whose backjump would
    /// discard more than a threshold of decision levels, step back just one
    /// level instead (CaDiCaL-style).
    pub chrono: bool,
    /// Periodic rephasing of saved polarities (splr-style stabilization
    /// schedule).
    pub rephase: bool,
    /// LBD-tiered learned-clause reduction: glue clauses (LBD ≤ 2) are
    /// kept forever; the rest are ranked by (LBD, activity).
    pub tiered_reduce: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            explain: ExplainStrategy::AllFalse,
            phase_saving: true,
            restart: RestartPolicy::Luby { base: 100 },
            var_decay: 0.95,
            seed: 0,
            chrono: false,
            rephase: false,
            tiered_reduce: false,
        }
    }
}

impl EngineConfig {
    /// Returns the same configuration with the given diversification seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The solvers evaluated in the paper, as configurations of our engines.
///
/// The paper observes that PBS II, Galena and Pueblo — three independent
/// implementations of the same DLL framework — show the *same* performance
/// trends, while the generic ILP solver CPLEX behaves differently. We
/// reproduce that axis with four configurations of one CDCL-PB engine
/// (differing in explanation strategy, phase handling and restarts) plus a
/// learning-free branch-and-bound baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// PBS II analogue: CNF-clause learning from PB conflicts, weak
    /// (all-false-literals) explanations, phase saving, Luby restarts.
    PbsII,
    /// Galena analogue: coefficient-greedy (cardinality-reduction-style)
    /// explanations.
    Galena,
    /// Pueblo analogue: recency-greedy (slack/cutting-plane-style)
    /// explanations.
    Pueblo,
    /// The retired original PBS: weak explanations, no phase saving,
    /// geometric restarts (Appendix Table 5 only).
    PbsLegacy,
    /// Generic branch-and-bound 0-1 ILP without conflict learning
    /// (CPLEX stand-in).
    Cplex,
    /// Parallel portfolio racing diversified CDCL configurations (see
    /// [`crate::solve_portfolio`]); not part of the paper's line-up. When
    /// reached through the sequential [`crate::optimize`] /
    /// [`crate::solve_decision`] interface (which carries no worker count)
    /// it runs [`SolverKind::DEFAULT_PORTFOLIO_WORKERS`] workers; the
    /// end-to-end flow passes its `parallelism` option explicitly.
    Portfolio,
}

impl SolverKind {
    /// Worker count used when [`SolverKind::Portfolio`] is run through an
    /// interface that does not carry an explicit parallelism setting.
    pub const DEFAULT_PORTFOLIO_WORKERS: usize = 4;

    /// All kinds used in the main tables (Tables 3–4).
    pub const MAIN: [SolverKind; 4] =
        [SolverKind::PbsII, SolverKind::Cplex, SolverKind::Galena, SolverKind::Pueblo];

    /// All kinds used in the Appendix (Table 5).
    pub const APPENDIX: [SolverKind; 5] = [
        SolverKind::PbsLegacy,
        SolverKind::PbsII,
        SolverKind::Cplex,
        SolverKind::Galena,
        SolverKind::Pueblo,
    ];

    /// The engine configuration for CDCL-based kinds; `None` for
    /// [`SolverKind::Cplex`] (which uses [`crate::BnbSolver`] instead) and
    /// [`SolverKind::Portfolio`] (which runs several configurations at
    /// once — see [`crate::portfolio_configs`]).
    pub fn engine_config(self) -> Option<EngineConfig> {
        match self {
            SolverKind::PbsII => Some(EngineConfig::default()),
            SolverKind::Galena => Some(EngineConfig {
                explain: ExplainStrategy::GreedyCoefficient,
                restart: RestartPolicy::Luby { base: 128 },
                ..EngineConfig::default()
            }),
            SolverKind::Pueblo => Some(EngineConfig {
                explain: ExplainStrategy::GreedyRecency,
                var_decay: 0.97,
                ..EngineConfig::default()
            }),
            SolverKind::PbsLegacy => Some(EngineConfig {
                explain: ExplainStrategy::AllFalse,
                phase_saving: false,
                restart: RestartPolicy::Geometric { first: 100, factor: 1.5 },
                ..EngineConfig::default()
            }),
            SolverKind::Cplex | SolverKind::Portfolio => None,
        }
    }

    /// Display name used in the experiment tables.
    pub fn display_name(self) -> &'static str {
        match self {
            SolverKind::PbsII => "PBS II",
            SolverKind::Galena => "Galena",
            SolverKind::Pueblo => "Pueblo",
            SolverKind::PbsLegacy => "PBS",
            SolverKind::Cplex => "CPLEX*",
            SolverKind::Portfolio => "Portfolio",
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct() {
        let configs: Vec<_> =
            [SolverKind::PbsII, SolverKind::Galena, SolverKind::Pueblo, SolverKind::PbsLegacy]
                .iter()
                .map(|k| k.engine_config().expect("cdcl kind"))
                .collect();
        for i in 0..configs.len() {
            for j in i + 1..configs.len() {
                assert_ne!(configs[i], configs[j], "presets {i} and {j} identical");
            }
        }
    }

    #[test]
    fn cplex_has_no_engine_config() {
        assert!(SolverKind::Cplex.engine_config().is_none());
    }

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<_> = SolverKind::APPENDIX.iter().map(|k| k.display_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}

//! Explanation of PB propagations and conflicts as implied CNF clauses.
//!
//! When a pseudo-Boolean constraint `Σ aⱼ·ℓⱼ ≥ b` propagates a literal or
//! becomes conflicting, the CDCL machinery needs a *clause* it can resolve
//! on. A sound explanation for propagating `ℓᵢ` is any clause
//! `ℓᵢ ∨ ⋁_{j∈F'} ℓⱼ` where `F'` is a set of falsified literals such that
//! the remaining coefficients cannot reach the bound:
//! `Σ_{j∉F'∪{i}} aⱼ < b`. The original PBS solver uses exactly this
//! CNF-explanation scheme; the strategies below differ in *which* subset
//! `F'` they pick, reproducing the algorithmic diversity of the paper's
//! three specialized solvers.

use sbgc_formula::Lit;

/// Strategy for choosing the falsified-literal subset in a PB explanation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExplainStrategy {
    /// Use *every* falsified literal (weakest, cheapest — original PBS).
    AllFalse,
    /// Greedily take falsified literals with the largest coefficients until
    /// the implication holds (shortest clause; in the spirit of Galena's
    /// cardinality reduction, which prunes by coefficient weight).
    GreedyCoefficient,
    /// Greedily take the most recently falsified literals until the
    /// implication holds (in the spirit of Pueblo's slack-based cutting
    /// planes, which work with the current trail state).
    GreedyRecency,
}

/// One falsified literal of a PB constraint, as seen by the explainer.
#[derive(Clone, Copy, Debug)]
pub struct FalseTerm {
    /// The falsified literal (as it appears in the constraint).
    pub lit: Lit,
    /// Its coefficient.
    pub coeff: u64,
    /// Trail position at which it was falsified (for recency ordering).
    pub trail_pos: usize,
}

impl ExplainStrategy {
    /// Builds the explanation literal set for a constraint with bound
    /// `rhs`, coefficient sum `coeff_sum` (over *all* terms), falsified
    /// terms `false_terms`, and — for a propagation — the coefficient
    /// `propagated_coeff` of the implied literal (`0` for a conflict).
    ///
    /// Returns the chosen subset of falsified literals. The caller prepends
    /// the implied literal for propagations.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if even the full falsified set does not
    /// justify the implication — i.e. the caller asked to explain something
    /// the constraint does not imply.
    pub fn select(
        self,
        rhs: u64,
        coeff_sum: u64,
        false_terms: &[FalseTerm],
        propagated_coeff: u64,
    ) -> Vec<Lit> {
        // The implication `ℓᵢ ∨ ⋁F'` holds iff
        //   coeff_sum - propagated_coeff - Σ_{j∈F'} aⱼ < rhs.
        let full: u64 = false_terms.iter().map(|t| t.coeff).sum();
        debug_assert!(
            coeff_sum - propagated_coeff - full < rhs,
            "explanation requested for a non-implication"
        );
        match self {
            ExplainStrategy::AllFalse => false_terms.iter().map(|t| t.lit).collect(),
            ExplainStrategy::GreedyCoefficient => {
                let mut sorted: Vec<&FalseTerm> = false_terms.iter().collect();
                sorted.sort_by_key(|t| (std::cmp::Reverse(t.coeff), t.trail_pos));
                Self::take_until_valid(rhs, coeff_sum, propagated_coeff, &sorted)
            }
            ExplainStrategy::GreedyRecency => {
                let mut sorted: Vec<&FalseTerm> = false_terms.iter().collect();
                sorted.sort_by_key(|t| std::cmp::Reverse(t.trail_pos));
                Self::take_until_valid(rhs, coeff_sum, propagated_coeff, &sorted)
            }
        }
    }

    fn take_until_valid(
        rhs: u64,
        coeff_sum: u64,
        propagated_coeff: u64,
        ordered: &[&FalseTerm],
    ) -> Vec<Lit> {
        let mut remaining = coeff_sum - propagated_coeff;
        let mut chosen = Vec::new();
        for t in ordered {
            if remaining < rhs {
                break;
            }
            remaining -= t.coeff;
            chosen.push(t.lit);
        }
        debug_assert!(remaining < rhs, "greedy selection failed to reach validity");
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::Var;

    fn ft(i: usize, coeff: u64, pos: usize) -> FalseTerm {
        FalseTerm { lit: Var::from_index(i).positive(), coeff, trail_pos: pos }
    }

    /// Constraint: 3a + 2b + 1c + 1d >= 3 (sum 7). a,b false → slack = 2-3 <0?
    /// With a,b false remaining = 2 < 3: conflict. Explanations:
    #[test]
    fn all_false_takes_everything() {
        let terms = [ft(0, 3, 10), ft(1, 2, 20)];
        let lits = ExplainStrategy::AllFalse.select(3, 7, &terms, 0);
        assert_eq!(lits.len(), 2);
    }

    #[test]
    fn greedy_coefficient_takes_fewest() {
        // 5a + 1b + 1c >= 2, sum = 7; a and b false (remaining 1 < 2).
        // Taking just a (coeff 5): remaining 2, not < 2. Need b too? remaining
        // after a = 2 which is NOT < 2, so must continue: take b → 1 < 2. Both.
        let terms = [ft(0, 5, 1), ft(1, 1, 2)];
        let lits = ExplainStrategy::GreedyCoefficient.select(2, 7, &terms, 0);
        assert_eq!(lits.len(), 2);
        // 5a + 3b + 1c >= 3, sum 9; a,b false → remaining 1 < 3 ✓.
        // Greedy: a (rem 4), b (rem 1 < 3) → needs both; but with
        // 6a + 3b + 1c >= 3 (sum 10), a,b false (rem 1): a → rem 4, b → 1. Hmm.
        // With rhs 5: 6a+3b+1c >= 5, a,b false → rem 1 < 5; a → rem 4 < 5 ✓
        let terms = [ft(0, 6, 1), ft(1, 3, 2)];
        let lits = ExplainStrategy::GreedyCoefficient.select(5, 10, &terms, 0);
        assert_eq!(lits.len(), 1);
        assert_eq!(lits[0], Var::from_index(0).positive());
    }

    #[test]
    fn greedy_recency_prefers_recent() {
        // 2a + 2b + 1c >= 4 (sum 5): propagating c (coeff 1) once a false:
        // remaining without c = 4, a false → 2 < 4 ✓. Now both a,b false;
        // explanation should take most recent first and stop when valid.
        let terms = [ft(0, 2, 1), ft(1, 2, 9)];
        let lits = ExplainStrategy::GreedyRecency.select(4, 5, &terms, 1);
        assert_eq!(lits.len(), 1);
        assert_eq!(lits[0], Var::from_index(1).positive(), "most recent literal chosen");
    }

    #[test]
    fn propagation_explanations_account_for_implied_coeff() {
        // 3a + 2b >= 3 (sum 5): a is forced even with b true (5-3=2 < 3),
        // so the greedy strategies need *no* antecedent literals, while
        // AllFalse conservatively includes the falsified b.
        let terms = [ft(1, 2, 4)];
        let lits = ExplainStrategy::AllFalse.select(3, 5, &terms, 3);
        assert_eq!(lits.len(), 1);
        for strat in [ExplainStrategy::GreedyCoefficient, ExplainStrategy::GreedyRecency] {
            assert!(strat.select(3, 5, &terms, 3).is_empty(), "{strat:?}");
        }
        // 3a + 2b + 2c >= 4 (sum 7): with b false, remaining excl. a = 2 <
        // 4 − wait: 7−3−2 = 2 < 4 ⇒ a implied *because* b is false; every
        // strategy must cite b.
        let terms = [ft(1, 2, 4)];
        for strat in [
            ExplainStrategy::AllFalse,
            ExplainStrategy::GreedyCoefficient,
            ExplainStrategy::GreedyRecency,
        ] {
            let lits = strat.select(4, 7, &terms, 3);
            assert_eq!(lits.len(), 1, "{strat:?}");
        }
    }
}

//! 0-1 ILP (pseudo-Boolean) solvers.
//!
//! This crate provides the solver zoo the paper evaluates:
//!
//! * [`PbEngine`] — a CDCL engine extended with counter-based propagation of
//!   pseudo-Boolean constraints. Conflicts involving PB constraints are
//!   explained by implied CNF clauses (exactly the strategy of the original
//!   PBS solver); the *explanation strategy* is pluggable, which yields the
//!   three specialized-solver analogues of the paper:
//!   [`SolverKind::PbsII`], [`SolverKind::Galena`], [`SolverKind::Pueblo`]
//!   (plus [`SolverKind::PbsLegacy`], the retired original-PBS configuration
//!   used in the paper's Appendix).
//! * [`BnbSolver`] — a generic branch-and-bound 0-1 ILP solver *without*
//!   conflict learning, standing in for the commercial CPLEX baseline
//!   (see `DESIGN.md` for the substitution rationale).
//! * [`optimize`] / [`Optimizer`] — Boolean optimization by iterated
//!   strengthening of the objective bound, the way PBS-class solvers
//!   minimize an objective.
//!
//! # Example
//!
//! ```
//! use sbgc_formula::{PbFormula, Objective, Var};
//! use sbgc_pb::{optimize, OptOutcome, SolverKind};
//! use sbgc_sat::Budget;
//!
//! // minimize y0 + y1 subject to y0 + y1 >= 1
//! let mut f = PbFormula::new();
//! let y: Vec<_> = (0..2).map(|_| f.new_var().positive()).collect();
//! f.add_clause(y.clone());
//! f.set_objective(Objective::minimize(y.iter().map(|&l| (1, l))));
//!
//! match optimize(&f, SolverKind::PbsII, &Budget::unlimited()) {
//!     OptOutcome::Optimal { value, .. } => assert_eq!(value, 1),
//!     other => panic!("expected optimum, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bnb;
mod config;
mod engine;
mod explain;
mod optimize;
mod portfolio;

pub use bnb::BnbSolver;
pub use config::{EngineConfig, RestartPolicy, SolverKind};
pub use engine::{PbEngine, PbStats};
pub use explain::ExplainStrategy;
pub use optimize::{
    optimize, optimize_recorded, optimize_recorded_with_stats, solve_decision,
    solve_decision_recorded, OptOutcome, Optimizer,
};
pub use portfolio::{
    optimize_portfolio, optimize_portfolio_instrumented, optimize_portfolio_recorded,
    portfolio_configs, solve_portfolio, solve_portfolio_instrumented, solve_portfolio_recorded,
    PortfolioError, PortfolioOptOutcome, PortfolioOutcome, PortfolioSession, SessionQueryOutcome,
};

pub use sbgc_obs::{FaultPlan, Recorder, WorkerTelemetry};
pub use sbgc_sat::{
    Budget, CancelToken, ExhaustReason, SharedClausePool, SharingConfig, SharingHandle,
    SolveOutcome,
};

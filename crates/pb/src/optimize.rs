//! Boolean optimization by iterated bound strengthening.
//!
//! PBS-class solvers minimize `MIN Σ cᵢ·ℓᵢ` by solving a sequence of
//! decision problems: find any solution, then add the constraint
//! `Σ cᵢ·ℓᵢ ≤ best − 1` and solve again, until UNSAT proves optimality
//! (linear search, the default of both PBS and Galena).

use crate::bnb::BnbSolver;
use crate::config::SolverKind;
use crate::engine::PbEngine;
use sbgc_formula::{Assignment, PbConstraint, PbFormula};
use sbgc_obs::Recorder;
use sbgc_sat::{Budget, SolveOutcome};

/// Result of an optimization run.
#[derive(Clone, Debug)]
pub enum OptOutcome {
    /// Proven optimal.
    Optimal {
        /// The minimal objective value.
        value: u64,
        /// A model attaining it.
        model: Assignment,
    },
    /// Budget ran out after at least one solution was found; the best known
    /// (possibly suboptimal) solution is returned.
    Feasible {
        /// The best objective value found.
        value: u64,
        /// A model attaining it.
        model: Assignment,
    },
    /// Proven infeasible (no solution at all).
    Infeasible,
    /// Budget ran out before any solution or infeasibility proof.
    Unknown,
}

impl OptOutcome {
    /// The objective value, if any solution was found.
    pub fn value(&self) -> Option<u64> {
        match self {
            OptOutcome::Optimal { value, .. } | OptOutcome::Feasible { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// The model, if any solution was found.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            OptOutcome::Optimal { model, .. } | OptOutcome::Feasible { model, .. } => Some(model),
            _ => None,
        }
    }

    /// `true` when optimality was proven.
    pub fn is_optimal(&self) -> bool {
        matches!(self, OptOutcome::Optimal { .. })
    }

    /// `true` when infeasibility was proven.
    pub fn is_infeasible(&self) -> bool {
        matches!(self, OptOutcome::Infeasible)
    }

    /// `true` when the run was decided (optimal or infeasible) — the
    /// "solved" criterion of the paper's tables.
    pub fn is_decided(&self) -> bool {
        self.is_optimal() || self.is_infeasible()
    }
}

/// A reusable optimizer around [`PbEngine`] (linear-search minimization).
///
/// Use [`optimize`] for the one-shot convenience form that also dispatches
/// to the branch-and-bound baseline.
pub struct Optimizer {
    engine: PbEngine,
    formula: PbFormula,
}

impl Optimizer {
    /// Builds an optimizer for `formula` with the engine configuration of
    /// `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`SolverKind::Cplex`] (use [`BnbSolver`]) or the
    /// formula has no objective.
    pub fn new(formula: &PbFormula, kind: SolverKind) -> Self {
        let config = kind
            .engine_config()
            .expect("Optimizer requires a CDCL solver kind; use BnbSolver for Cplex");
        assert!(formula.objective().is_some(), "formula must carry an objective");
        Optimizer { engine: PbEngine::from_formula(formula, config), formula: formula.clone() }
    }

    /// Runs linear-search minimization under `budget`.
    pub fn run(&mut self, budget: &Budget) -> OptOutcome {
        // Arm once here so every decision query of the strengthening loop
        // shares the same wall-clock deadline.
        let budget = budget.started();
        let objective = self.formula.objective().expect("checked in new").clone();
        let mut best: Option<(u64, Assignment)> = None;
        loop {
            match self.engine.solve_with_budget(&budget) {
                SolveOutcome::Sat(model) => {
                    let value = objective.value(&model).expect("total model");
                    if let Some((b, bm)) = &best {
                        if *b <= value {
                            // A non-improving model despite the strict bound
                            // would indicate an engine bug; stop defensively.
                            debug_assert!(false, "bound constraint not enforced");
                            return OptOutcome::Feasible { value: *b, model: bm.clone() };
                        }
                    }
                    if value == 0 {
                        return OptOutcome::Optimal { value: 0, model };
                    }
                    // Strengthen: objective <= value - 1.
                    let bound = PbConstraint::at_most(
                        objective.terms().iter().map(|&(c, l)| (c as i64, l)),
                        value as i64 - 1,
                    );
                    best = Some((value, model));
                    self.engine.add_pb(bound);
                }
                SolveOutcome::Unsat => {
                    return match best {
                        Some((value, model)) => OptOutcome::Optimal { value, model },
                        None => OptOutcome::Infeasible,
                    };
                }
                SolveOutcome::Unknown => {
                    return match best {
                        Some((value, model)) => OptOutcome::Feasible { value, model },
                        None => OptOutcome::Unknown,
                    };
                }
            }
        }
    }

    /// Statistics of the underlying engine.
    pub fn stats(&self) -> crate::PbStats {
        self.engine.stats()
    }

    /// Attaches a [`Recorder`] to the underlying engine (see
    /// [`PbEngine::set_recorder`]).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.engine.set_recorder(recorder);
    }
}

/// Minimizes `formula`'s objective with the given solver under `budget`.
///
/// Dispatches to the CDCL-PB [`Optimizer`] or, for
/// [`SolverKind::Cplex`], to the branch-and-bound [`BnbSolver`].
///
/// # Panics
///
/// Panics if the formula has no objective.
pub fn optimize(formula: &PbFormula, kind: SolverKind, budget: &Budget) -> OptOutcome {
    optimize_recorded(formula, kind, budget, &Recorder::disabled())
}

/// [`optimize`] with observability: CDCL engines (including every
/// portfolio worker) flush their search counters into `recorder`.
/// The branch-and-bound [`SolverKind::Cplex`] baseline records no
/// counters — it has no CDCL events to report.
pub fn optimize_recorded(
    formula: &PbFormula,
    kind: SolverKind,
    budget: &Budget,
    recorder: &Recorder,
) -> OptOutcome {
    optimize_recorded_with_stats(formula, kind, budget, recorder).0
}

/// [`optimize_recorded`] that also returns the engine statistics of the
/// run — for the CDCL kinds the optimizer's own counters, for the
/// portfolio the sum over all workers, and for the branch-and-bound
/// baseline (which has no CDCL counters) the default all-zero stats.
///
/// The `exhaust` field of the returned stats is the budget-exhaustion
/// reason when the run ended undecided, which is how callers distinguish
/// "ran out of conflicts" from "ran out of memory" (see
/// [`sbgc_sat::ExhaustReason`]).
pub fn optimize_recorded_with_stats(
    formula: &PbFormula,
    kind: SolverKind,
    budget: &Budget,
    recorder: &Recorder,
) -> (OptOutcome, crate::PbStats) {
    match kind {
        SolverKind::Cplex => (BnbSolver::new(formula).run(budget), crate::PbStats::default()),
        SolverKind::Portfolio => {
            let configs = crate::portfolio_configs(SolverKind::DEFAULT_PORTFOLIO_WORKERS);
            let race = crate::optimize_portfolio_recorded(formula, &configs, budget, recorder)
                .unwrap_or_else(|e| panic!("{e}"));
            (race.outcome, race.stats)
        }
        _ => {
            let mut opt = Optimizer::new(formula, kind);
            opt.set_recorder(recorder.clone());
            let outcome = opt.run(budget);
            let stats = opt.stats();
            (outcome, stats)
        }
    }
}

/// Solves the decision problem (ignoring any objective) with the given
/// solver under `budget`.
pub fn solve_decision(formula: &PbFormula, kind: SolverKind, budget: &Budget) -> SolveOutcome {
    solve_decision_recorded(formula, kind, budget, &Recorder::disabled())
}

/// [`solve_decision`] with observability: CDCL engines (including every
/// portfolio worker) flush their search counters into `recorder`; the
/// branch-and-bound baseline records nothing.
pub fn solve_decision_recorded(
    formula: &PbFormula,
    kind: SolverKind,
    budget: &Budget,
    recorder: &Recorder,
) -> SolveOutcome {
    match kind {
        SolverKind::Cplex => {
            let mut f = formula.clone();
            f.clear_objective();
            BnbSolver::new(&f).run_decision(budget)
        }
        SolverKind::Portfolio => {
            let configs = crate::portfolio_configs(SolverKind::DEFAULT_PORTFOLIO_WORKERS);
            crate::solve_portfolio_recorded(formula, &configs, budget, recorder)
                .unwrap_or_else(|e| panic!("{e}"))
                .outcome
        }
        _ => {
            let config = kind.engine_config().expect("CDCL kind");
            let mut engine = PbEngine::from_formula(formula, config);
            engine.set_recorder(recorder.clone());
            engine.solve_with_budget(budget)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::{Lit, Objective, Var};

    fn setup() -> PbFormula {
        // minimize y0 + y1 + y2 s.t. y0 + y1 >= 1, y1 + y2 >= 1, y0 + y2 >= 1
        // optimum 2 (any two of the three).
        let mut f = PbFormula::new();
        let y: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_clause([y[0], y[1]]);
        f.add_clause([y[1], y[2]]);
        f.add_clause([y[0], y[2]]);
        f.set_objective(Objective::minimize(y.iter().map(|&l| (1, l))));
        f
    }

    #[test]
    fn finds_optimum_with_every_cdcl_kind() {
        let f = setup();
        for kind in
            [SolverKind::PbsII, SolverKind::Galena, SolverKind::Pueblo, SolverKind::PbsLegacy]
        {
            match optimize(&f, kind, &Budget::unlimited()) {
                OptOutcome::Optimal { value, model } => {
                    assert_eq!(value, 2, "{kind}");
                    assert!(f.is_satisfied_by(&model), "{kind}");
                }
                other => panic!("{kind}: expected optimal, got {other:?}"),
            }
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_unit(a);
        f.add_unit(!a);
        f.set_objective(Objective::minimize([(1, a)]));
        assert!(optimize(&f, SolverKind::PbsII, &Budget::unlimited()).is_infeasible());
    }

    #[test]
    fn zero_objective_short_circuit() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        let b = f.new_var().positive();
        f.add_clause([a, b]); // satisfiable with a=1,b=0 or a=0,b=1 ...
        f.add_clause([a]); // force a
        f.set_objective(Objective::minimize([(1, b)]));
        match optimize(&f, SolverKind::PbsII, &Budget::unlimited()) {
            OptOutcome::Optimal { value, .. } => assert_eq!(value, 0),
            other => panic!("expected optimal 0, got {other:?}"),
        }
    }

    #[test]
    fn decision_interface_agrees() {
        let f = setup();
        for kind in SolverKind::APPENDIX {
            let out = solve_decision(&f, kind, &Budget::unlimited());
            assert!(out.is_sat(), "{kind}");
        }
    }

    #[test]
    fn tight_budget_gives_unknown_or_feasible() {
        let f = setup();
        let b = Budget::unlimited().with_max_conflicts(0);
        match optimize(&f, SolverKind::PbsII, &b) {
            OptOutcome::Unknown | OptOutcome::Feasible { .. } | OptOutcome::Optimal { .. } => {}
            OptOutcome::Infeasible => panic!("feasible problem reported infeasible"),
        }
    }
}

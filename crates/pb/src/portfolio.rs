//! Parallel portfolio solving with cooperative cancellation and panic
//! isolation.
//!
//! The paper observes that PBS II, Galena and Pueblo — three configurations
//! of the same CDCL-PB framework — "exhibit the same performance trends"
//! but differ in *which* instances each wins. A portfolio exploits exactly
//! that diversity: race one worker per [`EngineConfig`] on the same
//! formula, take the first definitive answer, and cancel the rest through
//! the shared [`CancelToken`] carried by every worker's [`Budget`] (a
//! losing worker stops at its next stride-64 budget check, i.e. within
//! ~64 conflicts).
//!
//! Two entry points mirror the sequential API:
//!
//! * [`solve_portfolio`] races decision solves ([`PbEngine`] workers);
//! * [`optimize_portfolio`] races iterated-strengthening optimization
//!   loops that share their incumbent bound through an `AtomicU64`, so any
//!   worker's improvement immediately tightens every other worker's
//!   objective cut.
//!
//! Everything is built on `std::thread::scope` — no dependencies beyond
//! `std`.
//!
//! # Learned-clause sharing
//!
//! Workers in one race cooperate, not just compete: every race creates a
//! [`SharedClausePool`] and hands each worker a [`SharingHandle`], so
//! learned clauses that pass the glue filter (low LBD, short — see
//! [`SharingConfig`]) are exported to the pool and imported by every peer
//! at its next restart. Import happens only at restart boundaries, where
//! the trail is at the root level anyway, which keeps the propagation hot
//! loop free of locks (see `docs/DESIGN.md` §4f). The `*_instrumented`
//! entry points accept `Option<SharingConfig>` so tests can race with
//! sharing disabled; the production wrappers always share.
//!
//! # Fault tolerance
//!
//! Each worker body runs under [`std::panic::catch_unwind`]: a panicking
//! worker dies alone while the survivors keep racing, and the race still
//! returns the first definitive answer. All shared state (winner slot,
//! summed stats, cancel mark, incumbent) is locked poison-tolerantly, so
//! a panic inside a critical section cannot wedge the surviving workers.
//! Dead workers are counted in [`PortfolioOutcome::failed_workers`] and —
//! with an enabled [`Recorder`] — recorded as [`WorkerTelemetry`] entries
//! whose `failed` field summarizes the panic payload. The deterministic
//! [`FaultPlan`] accepted by the `*_instrumented` entry points exists to
//! test exactly this machinery (see `docs/ROBUSTNESS.md`).

use crate::config::{EngineConfig, RestartPolicy, SolverKind};
use crate::engine::{PbEngine, PbStats};
use crate::optimize::OptOutcome;
use sbgc_formula::{Assignment, Lit, PbConstraint, PbFormula};
use sbgc_obs::{FaultPlan, Recorder, SearchCounters, WorkerTelemetry};
use sbgc_sat::{Budget, CancelToken, SharedClausePool, SharingConfig, SharingHandle, SolveOutcome};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Typed failure of a portfolio entry point — misuse conditions that were
/// previously reported by panicking, surfaced as values so callers can
/// degrade gracefully (see `docs/ROBUSTNESS.md`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortfolioError {
    /// The `configs` slice was empty: there is no worker to race.
    NoWorkers,
    /// [`optimize_portfolio`] was called on a formula without an
    /// objective; there is nothing to minimize.
    MissingObjective,
}

impl std::fmt::Display for PortfolioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortfolioError::NoWorkers => write!(f, "portfolio needs at least one config"),
            PortfolioError::MissingObjective => {
                write!(f, "optimize_portfolio requires a formula with an objective")
            }
        }
    }
}

impl std::error::Error for PortfolioError {}

/// Result of a [`solve_portfolio`] race.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The decision answer (first definitive one, else `Unknown`).
    pub outcome: SolveOutcome,
    /// Index (into the `configs` slice) and configuration of the worker
    /// that produced the definitive answer, when there was one.
    pub winner: Option<(usize, EngineConfig)>,
    /// Engine statistics summed over *all* workers — the total work spent,
    /// not just the winner's share.
    pub stats: PbStats,
    /// Number of workers that died (panicked) during the race. The race
    /// result comes from the survivors; a non-zero count alongside a
    /// definitive `outcome` means the portfolio degraded gracefully.
    pub failed_workers: usize,
}

/// Result of an [`optimize_portfolio`] race.
#[derive(Clone, Debug)]
pub struct PortfolioOptOutcome {
    /// The optimization answer (first worker to prove optimality or
    /// infeasibility wins; otherwise the best shared incumbent).
    pub outcome: OptOutcome,
    /// Index and configuration of the winning worker, when one proved the
    /// answer.
    pub winner: Option<(usize, EngineConfig)>,
    /// Engine statistics summed over all workers.
    pub stats: PbStats,
    /// Number of workers that died (panicked) during the race.
    pub failed_workers: usize,
}

/// Locks poison-tolerantly: a mutex poisoned by a panicking worker stays
/// usable for the survivors. All the portfolio's shared state is plain
/// data whose invariants hold between (not within) lock acquisitions, so
/// recovering the inner value is always sound here.
fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a `catch_unwind` payload for telemetry; panic messages are
/// almost always `&str` or `String`.
fn panic_summary(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

fn add_stats(total: &mut PbStats, s: PbStats) {
    total.decisions += s.decisions;
    total.conflicts += s.conflicts;
    total.propagations += s.propagations;
    total.restarts += s.restarts;
    total.learned += s.learned;
    total.deleted += s.deleted;
    total.pb_conflicts += s.pb_conflicts;
    total.learned_literals += s.learned_literals;
    total.lbd_sum += s.lbd_sum;
    total.exported += s.exported;
    total.imported += s.imported;
    // Keep the first exhaustion reason any worker reported; a decided race
    // clears it at the end (the answer supersedes the losers' exhaustion).
    total.exhaust = total.exhaust.or(s.exhaust);
}

/// Human-readable label of a worker configuration: the preset name when
/// the config matches one of the named [`SolverKind`]s, plus suffixes for
/// the modern-CDCL knobs layered on top of it, plus the seed — e.g.
/// `"Galena +adaptive-restarts +chrono +tiered (seed 1)"`.
fn config_label(config: &EngineConfig) -> String {
    const NAMED: [SolverKind; 4] =
        [SolverKind::PbsII, SolverKind::Galena, SolverKind::Pueblo, SolverKind::PbsLegacy];
    for kind in NAMED {
        let preset = kind.engine_config().expect("named kinds are CDCL");
        let mut probe = config.with_seed(0);
        let mut flags = String::new();
        if probe.restart != preset.restart {
            match probe.restart {
                RestartPolicy::Luby { base } => flags.push_str(&format!(" +luby{base}")),
                RestartPolicy::Geometric { first, .. } => flags.push_str(&format!(" +geo{first}")),
                RestartPolicy::AdaptiveLbd { .. } => flags.push_str(" +adaptive-restarts"),
            }
            probe.restart = preset.restart;
        }
        if probe.chrono {
            flags.push_str(" +chrono");
            probe.chrono = false;
        }
        if probe.rephase {
            flags.push_str(" +rephase");
            probe.rephase = false;
        }
        if probe.tiered_reduce {
            flags.push_str(" +tiered");
            probe.tiered_reduce = false;
        }
        if probe == preset {
            return format!("{}{} (seed {})", kind.display_name(), flags, config.seed);
        }
    }
    format!("{config:?}")
}

/// Shared cancel-time mark for measuring cooperative-cancellation latency:
/// the winner stamps it immediately before tripping the [`CancelToken`];
/// losers subtract it from their own finish time.
struct CancelMark(Mutex<Option<Instant>>);

impl CancelMark {
    fn new() -> Self {
        CancelMark(Mutex::new(None))
    }

    fn stamp(&self) {
        *lock_tolerant(&self.0) = Some(Instant::now());
    }

    /// Latency from the stamp to `finish`; `None` if the race was never
    /// cancelled or this worker finished before the stamp.
    fn latency(&self, finish: Instant) -> Option<std::time::Duration> {
        lock_tolerant(&self.0).and_then(|t| finish.checked_duration_since(t))
    }
}

/// A diversified portfolio of `n` engine configurations.
///
/// Worker 0 is the plain PBS II preset with seed 0 — *identical* to the
/// sequential default — so a 1-worker portfolio explores exactly the
/// sequential search tree. Further workers cycle through the legacy-PBS,
/// Pueblo and Galena presets (three explanation strategies) and layer
/// modern-CDCL knobs on top for diversification: adaptive-LBD restarts,
/// chronological backtracking, rephasing and tiered clause-database
/// reduction, in distinct combinations per worker. The ladder is ordered
/// by distance from worker 0's plain PBS II — worker 1 is the *most*
/// different (legacy-PBS explanations, no phase saving, every modern
/// knob on), so a narrow 2-worker portfolio on a small host already
/// spans the extremes of the configuration space. Workers past the
/// first cycle vary the Luby restart base instead, doubling it every
/// lap. Every worker carries its index as the diversification seed,
/// which deterministically perturbs initial phases and VSIDS
/// tie-breaking. No wall-clock randomness anywhere: the same `n` always
/// yields the same portfolio.
pub fn portfolio_configs(n: usize) -> Vec<EngineConfig> {
    const CYCLE: [SolverKind; 4] =
        [SolverKind::PbsII, SolverKind::PbsLegacy, SolverKind::Pueblo, SolverKind::Galena];
    (0..n.max(1))
        .map(|i| {
            let kind = CYCLE[i % CYCLE.len()];
            let mut c = kind.engine_config().expect("CDCL kind").with_seed(i as u64);
            match i {
                // The sequential twin stays byte-identical to the preset.
                0 => {}
                1 => {
                    c.restart = RestartPolicy::AdaptiveLbd { min_interval: 100 };
                    c.chrono = true;
                    c.rephase = true;
                    c.tiered_reduce = true;
                }
                2 => {
                    c.rephase = true;
                    c.tiered_reduce = true;
                }
                3 => {
                    c.restart = RestartPolicy::AdaptiveLbd { min_interval: 50 };
                    c.chrono = true;
                    c.tiered_reduce = true;
                }
                _ => {
                    // Later laps re-run the preset cycle with a doubled Luby
                    // base per lap and the tiered clause database.
                    c.restart = RestartPolicy::Luby { base: 50 << ((i / 4).min(10)) };
                    c.tiered_reduce = true;
                }
            }
            c
        })
        .collect()
}

/// Races one [`PbEngine`] per config on the decision problem; the first
/// worker to answer Sat or Unsat cancels the rest.
///
/// With a single config this degenerates to the sequential solve (plus one
/// scoped thread). All workers share the caller's `budget` — its deadline
/// is armed once, here, so setup and losing workers don't extend it.
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty.
pub fn solve_portfolio(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
) -> Result<PortfolioOutcome, PortfolioError> {
    solve_portfolio_recorded(formula, configs, budget, &Recorder::disabled())
}

/// [`solve_portfolio`] with observability: each worker flushes its search
/// counters into `recorder` and records a [`WorkerTelemetry`] entry
/// (configuration, own counters, whether it won, cancellation latency,
/// run time) on exit. A disabled recorder makes this identical to
/// [`solve_portfolio`].
///
/// # Example
///
/// ```
/// use sbgc_formula::PbFormula;
/// use sbgc_obs::Recorder;
/// use sbgc_pb::{portfolio_configs, solve_portfolio_recorded, Budget};
///
/// let mut f = PbFormula::new();
/// let a = f.new_var().positive();
/// let b = f.new_var().positive();
/// f.add_clause([a, b]);
///
/// let recorder = Recorder::new();
/// let out =
///     solve_portfolio_recorded(&f, &portfolio_configs(2), &Budget::unlimited(), &recorder)
///         .expect("non-empty portfolio");
/// assert!(out.outcome.is_sat());
/// let workers = recorder.workers();
/// assert_eq!(workers.len(), 2);
/// assert_eq!(workers.iter().filter(|w| w.won).count(), 1);
/// ```
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty.
pub fn solve_portfolio_recorded(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
) -> Result<PortfolioOutcome, PortfolioError> {
    solve_portfolio_instrumented(
        formula,
        configs,
        budget,
        recorder,
        None,
        Some(SharingConfig::default()),
    )
}

/// [`solve_portfolio_recorded`] plus deterministic fault injection and a
/// sharing override: when `fault` schedules a panic for a worker, that
/// worker's solve is capped at the scheduled conflict count and then
/// panics — exercising the panic-isolation path on purpose. `sharing`
/// selects the learned-clause export filter (`None` disables clause
/// sharing entirely, for A/B tests). Production callers pass `None` for
/// `fault` and `Some(SharingConfig::default())` for `sharing`.
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty.
pub fn solve_portfolio_instrumented(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
    fault: Option<&FaultPlan>,
    sharing: Option<SharingConfig>,
) -> Result<PortfolioOutcome, PortfolioError> {
    if configs.is_empty() {
        return Err(PortfolioError::NoWorkers);
    }
    let budget = budget.started();
    let race = CancelToken::new();
    let cancel_mark = CancelMark::new();
    let pool = SharedClausePool::new();
    let winner: Mutex<Option<(usize, SolveOutcome)>> = Mutex::new(None);
    let stats: Mutex<PbStats> = Mutex::new(PbStats::default());
    let failed = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for (index, &config) in configs.iter().enumerate() {
            let worker_budget = budget.clone().with_cancel_token(race.clone());
            let sharing_handle = sharing.map(|cfg| pool.handle(index, cfg));
            let (race, winner, stats, cancel_mark, failed) =
                (&race, &winner, &stats, &cancel_mark, &failed);
            s.spawn(move || {
                let run_start = Instant::now();
                let injected = fault.and_then(|p| p.worker_panic(index));
                let body = catch_unwind(AssertUnwindSafe(|| {
                    let worker_budget = match injected {
                        Some(n) => worker_budget.clone().with_max_conflicts(n),
                        None => worker_budget,
                    };
                    let mut engine = PbEngine::from_formula(formula, config);
                    engine.set_recorder(recorder.clone());
                    if let Some(handle) = sharing_handle {
                        engine.set_sharing(handle);
                    }
                    let out = engine.solve_with_budget(&worker_budget);
                    if let Some(n) = injected {
                        panic!("injected fault: worker {index} panicked after {n} conflicts");
                    }
                    let finish = Instant::now();
                    add_stats(&mut lock_tolerant(stats), engine.stats());
                    let mut won = false;
                    if matches!(out, SolveOutcome::Sat(_) | SolveOutcome::Unsat) {
                        let mut w = lock_tolerant(winner);
                        if w.is_none() {
                            *w = Some((index, out));
                            cancel_mark.stamp();
                            race.cancel();
                            won = true;
                        }
                    }
                    if recorder.is_enabled() {
                        engine.flush_recorder();
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            kind: "cdcl".to_string(),
                            seed: config.seed,
                            config: config_label(&config),
                            search: engine.stats().into(),
                            won,
                            cancel_latency: if won { None } else { cancel_mark.latency(finish) },
                            run_time: finish.duration_since(run_start),
                            failed: None,
                            query: None,
                        });
                    }
                }));
                if let Err(payload) = body {
                    failed.fetch_add(1, Ordering::Relaxed);
                    if recorder.is_enabled() {
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            kind: "cdcl".to_string(),
                            seed: config.seed,
                            config: config_label(&config),
                            search: SearchCounters::default(),
                            won: false,
                            cancel_latency: None,
                            run_time: run_start.elapsed(),
                            failed: Some(panic_summary(payload.as_ref())),
                            query: None,
                        });
                    }
                }
            });
        }
    });

    let (winner, outcome) = match lock_tolerant(&winner).take() {
        Some((index, out)) => (Some((index, configs[index])), out),
        None => (None, SolveOutcome::Unknown),
    };
    let mut stats = *lock_tolerant(&stats);
    if !matches!(outcome, SolveOutcome::Unknown) {
        // The race was decided; the losers' budget exhaustion is not the
        // outcome's exhaustion.
        stats.exhaust = None;
    }
    Ok(PortfolioOutcome { outcome, winner, stats, failed_workers: failed.load(Ordering::Relaxed) })
}

/// The shared incumbent of an optimization race: the best objective value
/// (an `AtomicU64`, `u64::MAX` = none yet) plus a model attaining it.
///
/// Update protocol: the model goes into the mutex *before* the value is
/// published with `fetch_min`, so any worker that observes value `v` in
/// the atomic will find a model of value ≤ `v` behind the lock.
struct Incumbent {
    bound: AtomicU64,
    model: Mutex<Option<(u64, Assignment)>>,
}

impl Incumbent {
    fn new() -> Self {
        Incumbent { bound: AtomicU64::new(u64::MAX), model: Mutex::new(None) }
    }

    /// Records `value`/`model` if it improves the incumbent. Returns the
    /// best bound after the update.
    fn offer(&self, value: u64, model: &Assignment) -> u64 {
        {
            let mut m = lock_tolerant(&self.model);
            if m.as_ref().is_none_or(|(b, _)| value < *b) {
                *m = Some((value, model.clone()));
            }
        }
        self.bound.fetch_min(value, Ordering::Release).min(value)
    }

    fn bound(&self) -> u64 {
        self.bound.load(Ordering::Acquire)
    }

    /// Clones the current best (value, model) pair.
    fn snapshot(&self) -> Option<(u64, Assignment)> {
        lock_tolerant(&self.model).clone()
    }

    fn take(self) -> Option<(u64, Assignment)> {
        self.model.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Adds `obj ≤ cut` to `engine` unless an equal or tighter cut is already
/// present, tracking the tightest cut in `local_cut`.
fn strengthen(
    engine: &mut PbEngine,
    objective: &sbgc_formula::Objective,
    local_cut: &mut Option<u64>,
    cut: u64,
) {
    if local_cut.is_none_or(|c| cut < c) {
        engine.add_pb(PbConstraint::at_most(
            objective.terms().iter().map(|&(c, l)| (c as i64, l)),
            cut as i64,
        ));
        *local_cut = Some(cut);
    }
}

/// Races one iterated-strengthening minimization loop per config.
///
/// Workers share their incumbent through an [`AtomicU64`] best bound: at
/// each iteration a worker adopts the tightest known bound as an objective
/// cut (`obj ≤ best − 1`), whether it was found locally or by a peer. The
/// first worker to *prove* optimality (UNSAT under a cut) or infeasibility
/// (UNSAT with no cut) cancels the rest. If the budget runs out first, the
/// best shared incumbent is returned as `Feasible`.
///
/// Soundness of the UNSAT case: every clause in every worker's database —
/// including clauses imported from peers via the shared pool — is entailed
/// by the formula plus the tightest objective cut any worker ever held,
/// and every cut is backed by a genuine incumbent model. A refutation
/// therefore proves the shared incumbent optimal; with no incumbent it
/// proves the formula infeasible (see
/// [`optimize_portfolio_instrumented`] for the full argument).
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty,
/// [`PortfolioError::MissingObjective`] if the formula has no objective.
pub fn optimize_portfolio(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
) -> Result<PortfolioOptOutcome, PortfolioError> {
    optimize_portfolio_recorded(formula, configs, budget, &Recorder::disabled())
}

/// [`optimize_portfolio`] with observability: each worker flushes its
/// search counters into `recorder` and records a [`WorkerTelemetry`]
/// entry on exit. A disabled recorder makes this identical to
/// [`optimize_portfolio`].
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty,
/// [`PortfolioError::MissingObjective`] if the formula has no objective.
pub fn optimize_portfolio_recorded(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
) -> Result<PortfolioOptOutcome, PortfolioError> {
    optimize_portfolio_instrumented(
        formula,
        configs,
        budget,
        recorder,
        None,
        Some(SharingConfig::default()),
    )
}

/// [`optimize_portfolio_recorded`] plus deterministic fault injection and
/// a sharing override (see [`solve_portfolio_instrumented`]). Production
/// callers pass `None` for `fault` and `Some(SharingConfig::default())`
/// for `sharing`.
///
/// Clause sharing stays sound across the iterated-strengthening loop even
/// though workers transiently carry *different* objective cuts. Every cut
/// anywhere is `obj ≤ b − 1` for some published incumbent bound `b`, and
/// the bound only decreases, so every clause in every database is entailed
/// by `formula ∧ (obj ≤ bound − 1)` for the *current* shared bound. A
/// refutation therefore proves the incumbent optimal — and is read that
/// way (the UNSAT branch consults the incumbent, not just the local cut).
/// Only when no incumbent was ever published (hence no cut ever existed
/// and all shared clauses are formula-entailed) does UNSAT mean
/// infeasible.
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty,
/// [`PortfolioError::MissingObjective`] if the formula has no objective.
pub fn optimize_portfolio_instrumented(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
    fault: Option<&FaultPlan>,
    sharing: Option<SharingConfig>,
) -> Result<PortfolioOptOutcome, PortfolioError> {
    if configs.is_empty() {
        return Err(PortfolioError::NoWorkers);
    }
    let objective = formula.objective().ok_or(PortfolioError::MissingObjective)?.clone();
    let budget = budget.started();
    let race = CancelToken::new();
    let cancel_mark = CancelMark::new();
    let incumbent = Incumbent::new();
    let pool = SharedClausePool::new();
    let winner: Mutex<Option<(usize, OptOutcome)>> = Mutex::new(None);
    let stats: Mutex<PbStats> = Mutex::new(PbStats::default());
    let failed = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for (index, &config) in configs.iter().enumerate() {
            let worker_budget = budget.clone().with_cancel_token(race.clone());
            let sharing_handle = sharing.map(|cfg| pool.handle(index, cfg));
            let (race, winner, stats, incumbent, objective, cancel_mark, failed) =
                (&race, &winner, &stats, &incumbent, &objective, &cancel_mark, &failed);
            s.spawn(move || {
                let run_start = Instant::now();
                let injected = fault.and_then(|p| p.worker_panic(index));
                let body = catch_unwind(AssertUnwindSafe(|| {
                    let worker_budget = match injected {
                        Some(n) => worker_budget.clone().with_max_conflicts(n),
                        None => worker_budget,
                    };
                    let mut engine = PbEngine::from_formula(formula, config);
                    engine.set_recorder(recorder.clone());
                    if let Some(handle) = sharing_handle {
                        engine.set_sharing(handle);
                    }
                    // Tightest objective cut this worker's engine carries.
                    let mut local_cut: Option<u64> = None;
                    let decided = loop {
                        // Adopt the shared incumbent before (re)solving.
                        let shared = incumbent.bound();
                        if shared == 0 {
                            // A peer holds a zero-cost model: globally optimal,
                            // that peer records the win.
                            break None;
                        }
                        if shared != u64::MAX {
                            strengthen(&mut engine, objective, &mut local_cut, shared - 1);
                        }
                        if worker_budget.exhausted(engine.stats().conflicts) {
                            break None;
                        }
                        match engine.solve_with_budget(&worker_budget) {
                            SolveOutcome::Sat(model) => {
                                let value = objective.value(&model).expect("total model");
                                incumbent.offer(value, &model);
                                if value == 0 {
                                    break Some(OptOutcome::Optimal { value: 0, model });
                                }
                                strengthen(&mut engine, objective, &mut local_cut, value - 1);
                            }
                            SolveOutcome::Unsat => {
                                // Consult the incumbent *at refutation time*:
                                // imported clauses are entailed by the formula
                                // plus the tightest cut any peer ever held
                                // (obj ≤ bound − 1), so this refutation proves
                                // no model of value ≤ bound − 1 exists — the
                                // incumbent (value = bound) is optimal. With
                                // no incumbent anywhere, no cut ever existed,
                                // every clause in every database is entailed
                                // by the formula alone, and the formula is
                                // genuinely infeasible.
                                break Some(match incumbent.snapshot() {
                                    None => OptOutcome::Infeasible,
                                    Some((value, model)) => {
                                        debug_assert!(local_cut.is_none_or(|c| value <= c + 1));
                                        OptOutcome::Optimal { value, model }
                                    }
                                });
                            }
                            SolveOutcome::Unknown => break None,
                        }
                    };
                    if let Some(n) = injected {
                        panic!("injected fault: worker {index} panicked after {n} conflicts");
                    }
                    let finish = Instant::now();
                    add_stats(&mut lock_tolerant(stats), engine.stats());
                    let mut won = false;
                    if let Some(outcome) = decided {
                        let mut w = lock_tolerant(winner);
                        if w.is_none() {
                            *w = Some((index, outcome));
                            cancel_mark.stamp();
                            race.cancel();
                            won = true;
                        }
                    }
                    if recorder.is_enabled() {
                        engine.flush_recorder();
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            kind: "cdcl".to_string(),
                            seed: config.seed,
                            config: config_label(&config),
                            search: engine.stats().into(),
                            won,
                            cancel_latency: if won { None } else { cancel_mark.latency(finish) },
                            run_time: finish.duration_since(run_start),
                            failed: None,
                            query: None,
                        });
                    }
                }));
                if let Err(payload) = body {
                    failed.fetch_add(1, Ordering::Relaxed);
                    if recorder.is_enabled() {
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            kind: "cdcl".to_string(),
                            seed: config.seed,
                            config: config_label(&config),
                            search: SearchCounters::default(),
                            won: false,
                            cancel_latency: None,
                            run_time: run_start.elapsed(),
                            failed: Some(panic_summary(payload.as_ref())),
                            query: None,
                        });
                    }
                }
            });
        }
    });

    let mut stats = *lock_tolerant(&stats);
    let failed_workers = failed.load(Ordering::Relaxed);
    if let Some((index, outcome)) = lock_tolerant(&winner).take() {
        stats.exhaust = None;
        return Ok(PortfolioOptOutcome {
            outcome,
            winner: Some((index, configs[index])),
            stats,
            failed_workers,
        });
    }
    let outcome = match incumbent.take() {
        Some((value, model)) => OptOutcome::Feasible { value, model },
        None => OptOutcome::Unknown,
    };
    Ok(PortfolioOptOutcome { outcome, winner: None, stats, failed_workers })
}

// ---------------------------------------------------------------------------
// Persistent portfolio session
// ---------------------------------------------------------------------------

/// Per-field difference of two cumulative stats snapshots — the work one
/// query cost a persistent engine. Carries the *after* exhaustion reason
/// (exhaustion is per-solve, not cumulative).
fn stats_delta(before: PbStats, after: PbStats) -> PbStats {
    let mut d = after;
    d.decisions -= before.decisions;
    d.conflicts -= before.conflicts;
    d.propagations -= before.propagations;
    d.restarts -= before.restarts;
    d.learned -= before.learned;
    d.deleted -= before.deleted;
    d.pb_conflicts -= before.pb_conflicts;
    d.learned_literals -= before.learned_literals;
    d.lbd_sum -= before.lbd_sum;
    d.exported -= before.exported;
    d.imported -= before.imported;
    d
}

/// A command sent to a persistent session worker. Shutdown is signalled by
/// dropping the sender, not by a variant.
enum Command {
    /// Answer one assumption query against the worker's long-lived engine.
    Query { id: u64, assumptions: Vec<Lit>, budget: Budget },
    /// Permanently add each literal as a unit clause before the next
    /// query. Fire-and-forget: the channel's ordering guarantees every
    /// worker applies the commit before it starts any later query, and
    /// `query` only returns once all workers are quiescent, so a clause
    /// learned from committed units can never reach a worker that has not
    /// committed them itself.
    Commit { units: Vec<Lit> },
}

/// One worker's answer to one [`Command::Query`].
enum ReplyBody {
    /// The query ran (possibly to `Unknown`); the engine survives and the
    /// worker is ready for the next query.
    Answered {
        outcome: SolveOutcome,
        /// Failed-assumption core; non-empty only for assumption-relative
        /// `Unsat` answers.
        core: Vec<Lit>,
        /// This query's search-counter *delta* (the engine's counters are
        /// cumulative across the session).
        delta: PbStats,
        /// Live learned clauses in the engine when the query started —
        /// state retained from earlier queries (0 on the first).
        retained: u64,
        run_time: Duration,
        finish: Instant,
    },
    /// The worker died (its solve panicked) and will never reply again; a
    /// possibly-corrupt engine is never reused.
    Died { summary: String, run_time: Duration },
}

struct Reply {
    worker: usize,
    query: u64,
    body: ReplyBody,
}

struct WorkerSlot {
    config: EngineConfig,
    tx: Option<Sender<Command>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl WorkerSlot {
    fn alive(&self) -> bool {
        self.tx.is_some()
    }

    /// Drops the command channel (the thread's `recv` loop exits if it is
    /// still running) and joins the thread.
    fn retire(&mut self) {
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Body of one persistent session worker thread: build the engine once,
/// then answer assumption queries until the command channel closes.
#[allow(clippy::too_many_arguments)]
fn session_worker(
    index: usize,
    config: EngineConfig,
    formula: Arc<PbFormula>,
    recorder: Recorder,
    fault: Option<FaultPlan>,
    sharing_handle: Option<SharingHandle>,
    rx: Receiver<Command>,
    reply_tx: Sender<Reply>,
) {
    // Engine construction is isolated like the solves: a panic here turns
    // into a `Died` reply on the first query instead of a hung session.
    let mut engine = catch_unwind(AssertUnwindSafe(|| {
        let mut e = PbEngine::from_formula(&formula, config);
        e.set_recorder(recorder.clone());
        if let Some(handle) = sharing_handle {
            e.set_sharing(handle);
        }
        e
    }))
    .map_err(|payload| panic_summary(payload.as_ref()));
    // In a session the fault plan's `after_conflicts` value is reinterpreted
    // as the 0-based *query index* at which this worker panics, modeling a
    // worker dying between ladder steps (see `docs/ROBUSTNESS.md`).
    let injected = fault.as_ref().and_then(|p| p.worker_panic(index));
    let stalled_from = fault.as_ref().and_then(|p| p.stalled_worker(index));
    while let Ok(command) = rx.recv() {
        let (id, assumptions, budget) = match command {
            Command::Query { id, assumptions, budget } => (id, assumptions, budget),
            Command::Commit { units } => {
                // `add_clause` backtracks to the root itself, so a unit is
                // safe to commit between queries. A panic here poisons the
                // engine exactly like a mid-solve panic: never reuse it.
                if let Ok(eng) = engine.as_mut() {
                    let committed = catch_unwind(AssertUnwindSafe(|| {
                        for &lit in &units {
                            eng.add_clause([lit]);
                        }
                    }));
                    if let Err(payload) = committed {
                        engine = Err(panic_summary(payload.as_ref()));
                    }
                }
                continue;
            }
        };
        let run_start = Instant::now();
        let eng = match engine.as_mut() {
            Ok(eng) => eng,
            Err(summary) => {
                let body =
                    ReplyBody::Died { summary: summary.clone(), run_time: run_start.elapsed() };
                let _ = reply_tx.send(Reply { worker: index, query: id, body });
                return;
            }
        };
        let before = eng.stats();
        let retained = eng.live_learned() as u64;
        let solved = catch_unwind(AssertUnwindSafe(|| {
            if injected == Some(id) {
                panic!("injected fault: worker {index} panicked before query {id}");
            }
            if stalled_from.is_some_and(|from| id >= from) {
                // Simulate a wedged search: burn wall-clock without any
                // conflict progress until the budget fires — a deadline,
                // a race cancel, or the supervisor's watchdog tripping the
                // query's cancel token. The engine is untouched, so the
                // worker stays reusable after the stall.
                let budget = budget.started();
                while !budget.exhausted(0) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                return (SolveOutcome::Unknown, Vec::new());
            }
            let outcome = eng.solve_with_assumptions(&assumptions, &budget);
            let core = match outcome {
                SolveOutcome::Unsat => eng.assumption_core().to_vec(),
                _ => Vec::new(),
            };
            (outcome, core)
        }));
        let finish = Instant::now();
        match solved {
            Ok((outcome, core)) => {
                if recorder.is_enabled() {
                    eng.flush_recorder();
                }
                let body = ReplyBody::Answered {
                    outcome,
                    core,
                    delta: stats_delta(before, eng.stats()),
                    retained,
                    run_time: finish.duration_since(run_start),
                    finish,
                };
                let _ = reply_tx.send(Reply { worker: index, query: id, body });
            }
            Err(payload) => {
                let body = ReplyBody::Died {
                    summary: panic_summary(payload.as_ref()),
                    run_time: finish.duration_since(run_start),
                };
                let _ = reply_tx.send(Reply { worker: index, query: id, body });
                return;
            }
        }
    }
}

/// Result of one [`PortfolioSession::query`].
#[derive(Clone, Debug)]
pub struct SessionQueryOutcome {
    /// The decision answer under the query's assumptions (first definitive
    /// reply, else `Unknown`).
    pub outcome: SolveOutcome,
    /// Index and configuration of the worker that produced the definitive
    /// answer, when there was one.
    pub winner: Option<(usize, EngineConfig)>,
    /// Search statistics summed over all workers, as *deltas* for this
    /// query only — the work this query cost, not the session's lifetime
    /// totals.
    pub stats: PbStats,
    /// Workers that died (panicked) during *this* query; see
    /// [`PortfolioSession::failed_workers`] for the session total.
    pub failed_workers: usize,
    /// Learned clauses still live across all engines when the query
    /// started — solver state retained from earlier queries (0 on the
    /// session's first query).
    pub retained_clauses: u64,
    /// The winner's failed-assumption core when `outcome` is `Unsat` under
    /// non-empty assumptions: a subset of the query's assumptions whose
    /// conjunction the formula already refutes. Empty otherwise.
    pub core: Vec<Lit>,
}

/// A persistent portfolio: one long-lived worker thread per
/// [`EngineConfig`], each keeping its [`PbEngine`] — clause database,
/// learned-clause tiers, saved phases, restart state — and its
/// [`SharedClausePool`] handle alive across an arbitrary number of
/// assumption queries.
///
/// This is the MiniSat-family incremental-SAT idea applied to a racing
/// portfolio: each [`query`](PortfolioSession::query) races all surviving
/// workers on `solve_with_assumptions`, takes the first definitive answer
/// and cancels the rest through a per-query [`CancelToken`]. Cancellation
/// of query *i*'s losers cannot poison query *i + 1*: a cancelled engine
/// backtracks to the root on its next solve and rejoins at the next query,
/// re-importing any pool clauses it missed at its first restart boundary.
/// Learned clauses — local and imported — are derived by resolution from
/// the clause database alone (assumptions enter as decisions, never as
/// axioms), so everything retained or shared is entailed by the formula
/// itself and stays valid for every later query, whatever its assumptions.
///
/// Fault tolerance matches the one-shot races: a worker that panics dies
/// alone (its possibly-corrupt engine is never reused), later queries race
/// the survivors, and a session whose workers have all died answers
/// `Unknown`. With an enabled [`Recorder`], every query records one
/// [`WorkerTelemetry`] entry per worker with the per-query counter delta
/// and the query index in its `query` field.
///
/// Dropping the session shuts the workers down and joins their threads.
pub struct PortfolioSession {
    workers: Vec<WorkerSlot>,
    reply_rx: Receiver<Reply>,
    recorder: Recorder,
    next_query: u64,
    failed_total: usize,
    pool: Arc<SharedClausePool>,
    sharing: Option<SharingConfig>,
}

impl PortfolioSession {
    /// Spawns one persistent worker per config on `formula`, with clause
    /// sharing on and no fault injection. Workers build their engines
    /// concurrently; the call returns without waiting for them.
    ///
    /// # Errors
    ///
    /// [`PortfolioError::NoWorkers`] if `configs` is empty.
    pub fn new(
        formula: &PbFormula,
        configs: &[EngineConfig],
        recorder: &Recorder,
    ) -> Result<Self, PortfolioError> {
        Self::with_instrumentation(formula, configs, recorder, None, Some(SharingConfig::default()))
    }

    /// [`PortfolioSession::new`] plus deterministic fault injection and a
    /// sharing override. In a session, a [`FaultPlan`] worker panic's
    /// `after_conflicts` value is reinterpreted as the 0-based **query
    /// index** at which the worker panics (a worker dying *between* ladder
    /// steps); the conflict-count reading only makes sense for one-shot
    /// races. Production callers use [`PortfolioSession::new`].
    ///
    /// # Errors
    ///
    /// [`PortfolioError::NoWorkers`] if `configs` is empty.
    pub fn with_instrumentation(
        formula: &PbFormula,
        configs: &[EngineConfig],
        recorder: &Recorder,
        fault: Option<&FaultPlan>,
        sharing: Option<SharingConfig>,
    ) -> Result<Self, PortfolioError> {
        if configs.is_empty() {
            return Err(PortfolioError::NoWorkers);
        }
        let formula = Arc::new(formula.clone());
        let pool = SharedClausePool::new();
        let (reply_tx, reply_rx) = mpsc::channel();
        let workers = configs
            .iter()
            .enumerate()
            .map(|(index, &config)| {
                let (tx, rx) = mpsc::channel();
                let formula = Arc::clone(&formula);
                let recorder = recorder.clone();
                let fault = fault.cloned();
                let sharing_handle = sharing.map(|cfg| pool.handle(index, cfg));
                let reply_tx = reply_tx.clone();
                let handle = std::thread::spawn(move || {
                    session_worker(
                        index,
                        config,
                        formula,
                        recorder,
                        fault,
                        sharing_handle,
                        rx,
                        reply_tx,
                    )
                });
                WorkerSlot { config, tx: Some(tx), handle: Some(handle) }
            })
            .collect();
        Ok(PortfolioSession {
            workers,
            reply_rx,
            recorder: recorder.clone(),
            next_query: 0,
            failed_total: 0,
            pool,
            sharing,
        })
    }

    /// Races all surviving workers on one assumption query and returns the
    /// first definitive answer (cancelling the losers), or `Unknown` when
    /// the budget ran out or every worker is dead.
    ///
    /// The call waits for *every* surviving worker to acknowledge the
    /// query (cancelled losers included) before returning, so the workers
    /// are quiescent — and their engines intact — when the next query
    /// starts. The budget's deadline is armed on first use, exactly like
    /// the one-shot races; conflict caps compare against each engine's
    /// *cumulative* conflict count, so a `with_max_conflicts` budget caps
    /// the session's total work, not each query's.
    pub fn query(&mut self, assumptions: &[Lit], budget: &Budget) -> SessionQueryOutcome {
        let id = self.next_query;
        self.next_query += 1;
        let budget = budget.started();
        let race = CancelToken::new();
        let cancel_mark = CancelMark::new();
        let mut pending = 0usize;
        for slot in &mut self.workers {
            let Some(tx) = &slot.tx else { continue };
            let command = Command::Query {
                id,
                assumptions: assumptions.to_vec(),
                budget: budget.clone().with_cancel_token(race.clone()),
            };
            if tx.send(command).is_ok() {
                pending += 1;
            } else {
                // The worker thread is already gone; retire the slot.
                slot.retire();
            }
        }

        let mut stats = PbStats::default();
        let mut retained_clauses = 0u64;
        let mut failed_workers = 0usize;
        let mut winner: Option<(usize, SolveOutcome, Vec<Lit>)> = None;
        while pending > 0 {
            // `recv` can only fail when every worker thread has exited, in
            // which case each pending worker already sent its `Died`.
            let Ok(reply) = self.reply_rx.recv() else { break };
            if reply.query != id {
                continue;
            }
            pending -= 1;
            let config = self.workers[reply.worker].config;
            match reply.body {
                ReplyBody::Died { summary, run_time } => {
                    failed_workers += 1;
                    self.failed_total += 1;
                    self.workers[reply.worker].retire();
                    if self.recorder.is_enabled() {
                        self.recorder.record_worker(WorkerTelemetry {
                            index: reply.worker,
                            kind: "cdcl".to_string(),
                            seed: config.seed,
                            config: config_label(&config),
                            search: SearchCounters::default(),
                            won: false,
                            cancel_latency: None,
                            run_time,
                            failed: Some(summary),
                            query: Some(id),
                        });
                    }
                }
                ReplyBody::Answered { outcome, core, delta, retained, run_time, finish } => {
                    add_stats(&mut stats, delta);
                    retained_clauses += retained;
                    let mut won = false;
                    if winner.is_none()
                        && matches!(outcome, SolveOutcome::Sat(_) | SolveOutcome::Unsat)
                    {
                        winner = Some((reply.worker, outcome, core));
                        cancel_mark.stamp();
                        race.cancel();
                        won = true;
                    }
                    if self.recorder.is_enabled() {
                        self.recorder.record_worker(WorkerTelemetry {
                            index: reply.worker,
                            kind: "cdcl".to_string(),
                            seed: config.seed,
                            config: config_label(&config),
                            search: delta.into(),
                            won,
                            cancel_latency: if won { None } else { cancel_mark.latency(finish) },
                            run_time,
                            failed: None,
                            query: Some(id),
                        });
                    }
                }
            }
        }

        let (winner, outcome, core) = match winner {
            Some((index, outcome, core)) => {
                (Some((index, self.workers[index].config)), outcome, core)
            }
            None => (None, SolveOutcome::Unknown, Vec::new()),
        };
        if !matches!(outcome, SolveOutcome::Unknown) {
            // The query was decided; the losers' budget exhaustion is not
            // the outcome's exhaustion.
            stats.exhaust = None;
        }
        SessionQueryOutcome { outcome, winner, stats, failed_workers, retained_clauses, core }
    }

    /// Permanently adds each literal in `units` as a unit clause in every
    /// surviving worker's engine, ahead of all later queries.
    ///
    /// This strengthens the formula, so it is only sound when the caller
    /// knows every *future* query would carry these literals among its
    /// assumptions anyway — e.g. a chromatic ladder whose upper bound just
    /// dropped commits the color-indicator suffix it will never query
    /// again. Root-level units beat assumptions: the engines simplify
    /// against them once instead of re-deciding them after every restart.
    pub fn commit_units(&mut self, units: &[Lit]) {
        if units.is_empty() {
            return;
        }
        for slot in &mut self.workers {
            let Some(tx) = &slot.tx else { continue };
            if tx.send(Command::Commit { units: units.to_vec() }).is_err() {
                slot.retire();
            }
        }
    }

    /// Number of workers still alive (spawned minus died).
    pub fn alive_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive()).count()
    }

    /// Total workers that have died (panicked) over the session's life.
    pub fn failed_workers(&self) -> usize {
        self.failed_total
    }

    /// Queries issued so far (the next query's 0-based index).
    pub fn queries_issued(&self) -> u64 {
        self.next_query
    }

    /// The RNG seed of each worker's engine config, in worker order —
    /// persisted in checkpoints so a resumed session can diversify away
    /// from the seeds that were running when the solve died.
    pub fn worker_seeds(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.config.seed).collect()
    }

    /// Snapshot of the session's shared clause pool: every clause any
    /// worker has exported so far, with its LBD. Clauses in the pool
    /// already passed a share filter at export time and are entailed by
    /// the formula plus the units committed so far, so they are exactly
    /// the lemmas a solve checkpoint may persist.
    ///
    /// Workers keep running while the snapshot is taken; callers that
    /// need a quiescent view (the checkpoint writer) call this between
    /// queries.
    pub fn export_clauses(&self) -> Vec<(Vec<Lit>, u32)> {
        self.pool.snapshot()
    }

    /// Seeds the shared pool with externally supplied learned clauses (a
    /// resumed checkpoint's lemmas); every worker imports them at its next
    /// restart boundary. Clauses are re-filtered through the session's
    /// sharing config. Returns the number accepted; a session built with
    /// sharing disabled accepts none.
    ///
    /// Only sound when each clause is entailed by the current formula —
    /// the resume path re-commits the checkpoint's bounds as root units
    /// *before* importing (see `docs/ROBUSTNESS.md`).
    pub fn import_clauses(&mut self, clauses: &[(Vec<Lit>, u32)]) -> usize {
        let Some(config) = self.sharing else { return 0 };
        self.pool.seed(clauses, config)
    }
}

impl Drop for PortfolioSession {
    fn drop(&mut self) {
        // Close every command channel first so all workers exit their
        // receive loops concurrently, then join.
        for slot in &mut self.workers {
            slot.tx = None;
        }
        for slot in &mut self.workers {
            if let Some(handle) = slot.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl std::fmt::Debug for PortfolioSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PortfolioSession(workers={}, alive={}, queries={})",
            self.workers.len(),
            self.alive_workers(),
            self.next_query
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::{Lit, Objective, Var};

    fn covering() -> PbFormula {
        // minimize y0 + y1 + y2 s.t. pairwise covers; optimum 2.
        let mut f = PbFormula::new();
        let y: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_clause([y[0], y[1]]);
        f.add_clause([y[1], y[2]]);
        f.add_clause([y[0], y[2]]);
        f.set_objective(Objective::minimize(y.iter().map(|&l| (1, l))));
        f
    }

    #[test]
    fn configs_are_deterministic_and_start_sequential() {
        let a = portfolio_configs(4);
        let b = portfolio_configs(4);
        assert_eq!(a, b);
        assert_eq!(a[0], SolverKind::PbsII.engine_config().expect("cdcl"));
        // All workers distinct (kind or seed differs).
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert_ne!(a[i], a[j]);
            }
        }
    }

    #[test]
    fn decision_race_agrees_with_sequential() {
        let f = covering();
        for n in 1..=4 {
            let out = solve_portfolio(&f, &portfolio_configs(n), &Budget::unlimited())
                .expect("non-empty portfolio");
            assert!(matches!(out.outcome, SolveOutcome::Sat(_)), "n={n}");
            assert!(out.winner.is_some());
            assert!(out.stats.decisions > 0);
            assert_eq!(out.failed_workers, 0);
        }
    }

    #[test]
    fn optimization_race_finds_the_optimum() {
        let f = covering();
        for n in 1..=4 {
            let out = optimize_portfolio(&f, &portfolio_configs(n), &Budget::unlimited())
                .expect("non-empty portfolio");
            match out.outcome {
                OptOutcome::Optimal { value, ref model } => {
                    assert_eq!(value, 2, "n={n}");
                    assert!(f.is_satisfied_by(model), "n={n}");
                }
                ref other => panic!("n={n}: expected optimal, got {other:?}"),
            }
            assert!(out.winner.is_some());
        }
    }

    #[test]
    fn infeasibility_is_detected() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_unit(a);
        f.add_unit(!a);
        f.set_objective(Objective::minimize([(1, a)]));
        let out = optimize_portfolio(&f, &portfolio_configs(3), &Budget::unlimited())
            .expect("non-empty portfolio");
        assert!(out.outcome.is_infeasible());
    }

    #[test]
    fn empty_portfolio_is_a_typed_error() {
        let f = covering();
        assert_eq!(
            solve_portfolio(&f, &[], &Budget::unlimited()).unwrap_err(),
            PortfolioError::NoWorkers
        );
        assert_eq!(
            optimize_portfolio(&f, &[], &Budget::unlimited()).unwrap_err(),
            PortfolioError::NoWorkers
        );
    }

    #[test]
    fn missing_objective_is_a_typed_error() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_unit(a);
        let err = optimize_portfolio(&f, &portfolio_configs(2), &Budget::unlimited()).unwrap_err();
        assert_eq!(err, PortfolioError::MissingObjective);
        assert!(err.to_string().contains("objective"));
    }

    #[test]
    fn zero_budget_cancels_cleanly() {
        let f = covering();
        let b = Budget::unlimited().with_max_conflicts(0);
        let out = optimize_portfolio(&f, &portfolio_configs(4), &b).expect("non-empty portfolio");
        assert!(!out.outcome.is_infeasible());
    }

    #[test]
    fn recorded_race_captures_worker_telemetry() {
        let f = covering();
        let rec = Recorder::new();
        let out =
            optimize_portfolio_recorded(&f, &portfolio_configs(3), &Budget::unlimited(), &rec)
                .expect("non-empty portfolio");
        assert!(out.winner.is_some());
        let workers = rec.workers();
        assert_eq!(workers.len(), 3, "every worker records telemetry");
        assert_eq!(workers.iter().filter(|w| w.won).count(), 1, "exactly one winner");
        for w in &workers {
            assert_eq!(w.seed, w.index as u64, "portfolio seeds are worker indices");
            assert!(!w.config.is_empty());
            assert!(w.failed.is_none());
        }
        // The engines flushed their counters into the shared recorder.
        assert!(rec.counter(sbgc_obs::Counter::Decisions) > 0);
        assert_eq!(rec.counter(sbgc_obs::Counter::Decisions), out.stats.decisions);
    }

    #[test]
    fn disabled_recorder_keeps_portfolio_silent() {
        let f = covering();
        let rec = Recorder::disabled();
        let out = solve_portfolio_recorded(&f, &portfolio_configs(2), &Budget::unlimited(), &rec)
            .expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Sat(_)));
        assert!(rec.workers().is_empty());
        assert_eq!(rec.counter(sbgc_obs::Counter::Decisions), 0);
    }

    #[test]
    fn config_labels_name_the_presets_and_knobs() {
        let labels: Vec<String> = portfolio_configs(6).iter().map(config_label).collect();
        assert_eq!(labels[0], "PBS II (seed 0)");
        assert_eq!(labels[1], "PBS +adaptive-restarts +chrono +rephase +tiered (seed 1)");
        assert_eq!(labels[2], "Pueblo +rephase +tiered (seed 2)");
        assert_eq!(labels[3], "Galena +adaptive-restarts +chrono +tiered (seed 3)");
        // Lap 2: preset cycle again, Luby base doubled, tiered reduction.
        assert_eq!(labels[4], "PBS II +tiered (seed 4)");
        assert_eq!(labels[5], "PBS +luby100 +tiered (seed 5)");
        // Plain presets keep their plain labels.
        assert_eq!(
            config_label(&SolverKind::Pueblo.engine_config().expect("cdcl").with_seed(7)),
            "Pueblo (seed 7)"
        );
    }

    #[test]
    fn pre_cancelled_budget_returns_unknown() {
        let f = covering();
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::unlimited().with_cancel_token(token);
        let out = solve_portfolio(&f, &portfolio_configs(4), &b).expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Unknown));
        assert!(out.winner.is_none());
    }

    #[test]
    fn injected_panic_leaves_survivors_winning() {
        let f = covering();
        let rec = Recorder::new();
        // Kill worker 1 immediately; workers 0 and 2 survive and decide.
        let plan = FaultPlan::new(0).with_worker_panic(1, 0);
        let out = optimize_portfolio_instrumented(
            &f,
            &portfolio_configs(3),
            &Budget::unlimited(),
            &rec,
            Some(&plan),
            Some(SharingConfig::default()),
        )
        .expect("non-empty portfolio");
        match out.outcome {
            OptOutcome::Optimal { value, .. } => assert_eq!(value, 2),
            ref other => panic!("survivors must decide, got {other:?}"),
        }
        assert_eq!(out.failed_workers, 1);
        let (winner_index, _) = out.winner.expect("a survivor won");
        assert_ne!(winner_index, 1, "the dead worker cannot win");
        let workers = rec.workers();
        assert_eq!(workers.len(), 3, "dead workers still record telemetry");
        let dead: Vec<_> = workers.iter().filter(|w| w.failed.is_some()).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].index, 1);
        assert!(dead[0].failed.as_deref().unwrap().contains("injected fault"));
        assert!(!dead[0].won);
    }

    #[test]
    fn injected_panic_in_decision_race_is_survivable() {
        let f = covering();
        let plan = FaultPlan::new(7).with_worker_panic(0, 0);
        let out = solve_portfolio_instrumented(
            &f,
            &portfolio_configs(2),
            &Budget::unlimited(),
            &Recorder::disabled(),
            Some(&plan),
            Some(SharingConfig::default()),
        )
        .expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Sat(_)));
        assert_eq!(out.failed_workers, 1);
        assert_eq!(out.winner.map(|(i, _)| i), Some(1));
    }

    #[test]
    fn all_workers_dead_degrades_gracefully() {
        let f = covering();
        let plan = FaultPlan::new(0).with_worker_panic(0, 0);
        let out = optimize_portfolio_instrumented(
            &f,
            &portfolio_configs(1),
            &Budget::unlimited(),
            &Recorder::disabled(),
            Some(&plan),
            Some(SharingConfig::default()),
        )
        .expect("non-empty portfolio");
        assert!(matches!(out.outcome, OptOutcome::Unknown | OptOutcome::Feasible { .. }));
        assert_eq!(out.failed_workers, 1);
        assert!(out.winner.is_none());
    }

    /// Clausal pigeonhole PHP(holes + 1, holes): UNSAT, with enough
    /// conflicts for workers to actually learn and exchange clauses.
    fn pigeonhole(holes: usize) -> PbFormula {
        let pigeons = holes + 1;
        let mut f = PbFormula::new();
        let x: Vec<Vec<Lit>> = (0..pigeons)
            .map(|_| f.new_vars(holes).into_iter().map(Var::positive).collect())
            .collect();
        for p in &x {
            f.add_clause(p.iter().copied());
        }
        for p in 0..pigeons {
            for q in p + 1..pigeons {
                for (&ph, &qh) in x[p].iter().zip(&x[q]) {
                    f.add_clause([!ph, !qh]);
                }
            }
        }
        f
    }

    #[test]
    fn sharing_on_and_off_agree() {
        // Same race, sharing enabled vs disabled, must reach the same
        // answers — clause exchange is an accelerator, never a semantics
        // change. One UNSAT and one SAT decision instance, plus the
        // optimization race.
        let unsat = pigeonhole(4);
        let sat = covering();
        for sharing in [None, Some(SharingConfig::default())] {
            let out = solve_portfolio_instrumented(
                &unsat,
                &portfolio_configs(3),
                &Budget::unlimited(),
                &Recorder::disabled(),
                None,
                sharing,
            )
            .expect("non-empty portfolio");
            assert!(matches!(out.outcome, SolveOutcome::Unsat), "sharing={sharing:?}");
            if sharing.is_none() {
                assert_eq!(out.stats.exported, 0, "disabled sharing must not export");
                assert_eq!(out.stats.imported, 0, "disabled sharing must not import");
            }

            let out = solve_portfolio_instrumented(
                &sat,
                &portfolio_configs(3),
                &Budget::unlimited(),
                &Recorder::disabled(),
                None,
                sharing,
            )
            .expect("non-empty portfolio");
            assert!(matches!(out.outcome, SolveOutcome::Sat(_)), "sharing={sharing:?}");

            let out = optimize_portfolio_instrumented(
                &sat,
                &portfolio_configs(3),
                &Budget::unlimited(),
                &Recorder::disabled(),
                None,
                sharing,
            )
            .expect("non-empty portfolio");
            match out.outcome {
                OptOutcome::Optimal { value, .. } => assert_eq!(value, 2, "sharing={sharing:?}"),
                ref other => panic!("sharing={sharing:?}: expected optimal, got {other:?}"),
            }
        }
    }

    #[test]
    fn shared_race_exchanges_clauses() {
        // On a conflict-rich UNSAT instance the race must actually use the
        // pool: someone exports, someone imports, and the summed stats
        // surface both so telemetry can report sharing traffic.
        let f = pigeonhole(5);
        let rec = Recorder::new();
        let out = solve_portfolio_recorded(&f, &portfolio_configs(4), &Budget::unlimited(), &rec)
            .expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Unsat));
        assert!(out.stats.exported > 0, "no worker exported a glue clause");
        // Imports are likely but racy (the winner may finish before peers
        // restart); the counters must at least be plumbed through.
        assert_eq!(rec.counter(sbgc_obs::Counter::Exported), out.stats.exported);
        assert_eq!(rec.counter(sbgc_obs::Counter::Imported), out.stats.imported);
    }

    #[test]
    fn worker_panic_does_not_poison_the_shared_pool() {
        // Kill one worker after a handful of conflicts — after it has had
        // the chance to export — with sharing enabled: the pool must stay
        // usable and the survivors must still refute the instance.
        let f = pigeonhole(4);
        let rec = Recorder::new();
        let plan = FaultPlan::new(3).with_worker_panic(1, 5);
        let out = solve_portfolio_instrumented(
            &f,
            &portfolio_configs(3),
            &Budget::unlimited(),
            &rec,
            Some(&plan),
            Some(SharingConfig::default()),
        )
        .expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Unsat), "survivors must refute");
        assert_eq!(out.failed_workers, 1);
        let (winner_index, _) = out.winner.expect("a survivor won");
        assert_ne!(winner_index, 1, "the dead worker cannot win");
    }

    /// Pigeonhole behind a gate literal: UNSAT under `¬gate`, SAT outright.
    fn gated_pigeonhole(holes: usize) -> (PbFormula, Lit) {
        let pigeons = holes + 1;
        let mut f = PbFormula::new();
        let gate = f.new_var().positive();
        let x: Vec<Vec<Lit>> = (0..pigeons)
            .map(|_| f.new_vars(holes).into_iter().map(Var::positive).collect())
            .collect();
        for p in &x {
            f.add_clause(p.iter().copied().chain([gate]));
        }
        for p in 0..pigeons {
            for q in p + 1..pigeons {
                for (&ph, &qh) in x[p].iter().zip(&x[q]) {
                    f.add_clause([!ph, !qh]);
                }
            }
        }
        (f, gate)
    }

    #[test]
    fn session_answers_assumption_queries() {
        let (f, gate) = gated_pigeonhole(4);
        let mut session = PortfolioSession::new(&f, &portfolio_configs(3), &Recorder::disabled())
            .expect("non-empty portfolio");
        let unsat = session.query(&[!gate], &Budget::unlimited());
        assert!(matches!(unsat.outcome, SolveOutcome::Unsat));
        assert!(unsat.winner.is_some());
        assert_eq!(unsat.core, vec![!gate], "the failed core is the gate assumption");

        let sat = session.query(&[], &Budget::unlimited());
        match sat.outcome {
            SolveOutcome::Sat(ref model) => assert!(f.is_satisfied_by(model)),
            ref other => panic!("expected sat without assumptions, got {other:?}"),
        }
        assert!(sat.core.is_empty());
        assert_eq!(session.queries_issued(), 2);
        assert_eq!(session.failed_workers(), 0);
    }

    #[test]
    fn session_retains_learned_clauses_across_queries() {
        let (f, gate) = gated_pigeonhole(5);
        let rec = Recorder::new();
        let mut session =
            PortfolioSession::new(&f, &portfolio_configs(2), &rec).expect("non-empty portfolio");
        let first = session.query(&[!gate], &Budget::unlimited());
        assert!(matches!(first.outcome, SolveOutcome::Unsat));
        assert_eq!(first.retained_clauses, 0, "nothing to retain on the first query");
        assert!(first.stats.learned > 0, "refuting PHP(6,5) must learn clauses");

        let second = session.query(&[!gate], &Budget::unlimited());
        assert!(matches!(second.outcome, SolveOutcome::Unsat));
        assert!(
            second.retained_clauses > 0,
            "the second query must start from retained learned clauses"
        );

        // Per-query telemetry: both queries recorded, tagged with their index.
        let workers = rec.workers();
        assert_eq!(workers.len(), 4, "2 workers × 2 queries");
        for q in [0u64, 1] {
            let per_query: Vec<_> = workers.iter().filter(|w| w.query == Some(q)).collect();
            assert_eq!(per_query.len(), 2, "query {q}");
            assert_eq!(per_query.iter().filter(|w| w.won).count(), 1, "query {q}");
        }
    }

    #[test]
    fn session_worker_panic_between_queries_leaves_survivors() {
        let (f, gate) = gated_pigeonhole(4);
        let rec = Recorder::new();
        // Worker 1 panics at query index 1 — between the first and second
        // ladder steps.
        let plan = FaultPlan::new(0).with_worker_panic(1, 1);
        let mut session = PortfolioSession::with_instrumentation(
            &f,
            &portfolio_configs(3),
            &rec,
            Some(&plan),
            Some(SharingConfig::default()),
        )
        .expect("non-empty portfolio");

        let first = session.query(&[!gate], &Budget::unlimited());
        assert!(matches!(first.outcome, SolveOutcome::Unsat));
        assert_eq!(first.failed_workers, 0);
        assert_eq!(session.alive_workers(), 3);

        let second = session.query(&[], &Budget::unlimited());
        assert!(matches!(second.outcome, SolveOutcome::Sat(_)), "survivors still answer");
        assert_eq!(second.failed_workers, 1);
        assert_eq!(session.alive_workers(), 2);
        let (winner_index, _) = second.winner.expect("a survivor won");
        assert_ne!(winner_index, 1, "the dead worker cannot win");

        let third = session.query(&[!gate], &Budget::unlimited());
        assert!(matches!(third.outcome, SolveOutcome::Unsat), "the session keeps going");
        assert_eq!(third.failed_workers, 0);
        assert_eq!(session.failed_workers(), 1);

        let dead: Vec<_> = rec.workers().into_iter().filter(|w| w.failed.is_some()).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].index, 1);
        assert_eq!(dead[0].query, Some(1));
    }

    #[test]
    fn session_with_all_workers_dead_answers_unknown() {
        let f = covering();
        let plan = FaultPlan::new(0).with_worker_panic(0, 0);
        let mut session = PortfolioSession::with_instrumentation(
            &f,
            &portfolio_configs(1),
            &Recorder::disabled(),
            Some(&plan),
            Some(SharingConfig::default()),
        )
        .expect("non-empty portfolio");
        let first = session.query(&[], &Budget::unlimited());
        assert!(matches!(first.outcome, SolveOutcome::Unknown));
        assert_eq!(first.failed_workers, 1);
        assert_eq!(session.alive_workers(), 0);
        // Further queries degrade to an immediate Unknown.
        let second = session.query(&[], &Budget::unlimited());
        assert!(matches!(second.outcome, SolveOutcome::Unknown));
        assert_eq!(second.failed_workers, 0);
    }

    #[test]
    fn session_empty_configs_is_a_typed_error() {
        let f = covering();
        let err = PortfolioSession::new(&f, &[], &Recorder::disabled()).unwrap_err();
        assert_eq!(err, PortfolioError::NoWorkers);
    }

    #[test]
    fn session_pre_cancelled_budget_stays_usable() {
        // A cancelled query (all workers Unknown) must not poison the next.
        let f = covering();
        let mut session = PortfolioSession::new(&f, &portfolio_configs(2), &Recorder::disabled())
            .expect("non-empty portfolio");
        let token = CancelToken::new();
        token.cancel();
        let cancelled = session.query(&[], &Budget::unlimited().with_cancel_token(token));
        assert!(matches!(cancelled.outcome, SolveOutcome::Unknown));
        assert_eq!(cancelled.failed_workers, 0);
        let after = session.query(&[], &Budget::unlimited());
        assert!(matches!(after.outcome, SolveOutcome::Sat(_)));
    }
}

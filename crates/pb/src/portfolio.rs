//! Parallel portfolio solving with cooperative cancellation.
//!
//! The paper observes that PBS II, Galena and Pueblo — three configurations
//! of the same CDCL-PB framework — "exhibit the same performance trends"
//! but differ in *which* instances each wins. A portfolio exploits exactly
//! that diversity: race one worker per [`EngineConfig`] on the same
//! formula, take the first definitive answer, and cancel the rest through
//! the shared [`CancelToken`] carried by every worker's [`Budget`] (a
//! losing worker stops at its next stride-64 budget check, i.e. within
//! ~64 conflicts).
//!
//! Two entry points mirror the sequential API:
//!
//! * [`solve_portfolio`] races decision solves ([`PbEngine`] workers);
//! * [`optimize_portfolio`] races iterated-strengthening optimization
//!   loops that share their incumbent bound through an `AtomicU64`, so any
//!   worker's improvement immediately tightens every other worker's
//!   objective cut.
//!
//! Everything is built on `std::thread::scope` — no dependencies beyond
//! `std`.

use crate::config::{EngineConfig, SolverKind};
use crate::engine::{PbEngine, PbStats};
use crate::optimize::OptOutcome;
use sbgc_formula::{Assignment, PbConstraint, PbFormula};
use sbgc_obs::{Recorder, WorkerTelemetry};
use sbgc_sat::{Budget, CancelToken, SolveOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Result of a [`solve_portfolio`] race.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The decision answer (first definitive one, else `Unknown`).
    pub outcome: SolveOutcome,
    /// Index (into the `configs` slice) and configuration of the worker
    /// that produced the definitive answer, when there was one.
    pub winner: Option<(usize, EngineConfig)>,
    /// Engine statistics summed over *all* workers — the total work spent,
    /// not just the winner's share.
    pub stats: PbStats,
}

/// Result of an [`optimize_portfolio`] race.
#[derive(Clone, Debug)]
pub struct PortfolioOptOutcome {
    /// The optimization answer (first worker to prove optimality or
    /// infeasibility wins; otherwise the best shared incumbent).
    pub outcome: OptOutcome,
    /// Index and configuration of the winning worker, when one proved the
    /// answer.
    pub winner: Option<(usize, EngineConfig)>,
    /// Engine statistics summed over all workers.
    pub stats: PbStats,
}

fn add_stats(total: &mut PbStats, s: PbStats) {
    total.decisions += s.decisions;
    total.conflicts += s.conflicts;
    total.propagations += s.propagations;
    total.restarts += s.restarts;
    total.learned += s.learned;
    total.deleted += s.deleted;
    total.pb_conflicts += s.pb_conflicts;
    total.learned_literals += s.learned_literals;
}

/// Human-readable label of a worker configuration: the preset name when
/// the config matches one of the named [`SolverKind`]s, plus the seed.
fn config_label(config: &EngineConfig) -> String {
    const NAMED: [SolverKind; 4] =
        [SolverKind::PbsII, SolverKind::Galena, SolverKind::Pueblo, SolverKind::PbsLegacy];
    let base = config.with_seed(0);
    for kind in NAMED {
        if kind.engine_config() == Some(base) {
            return format!("{} (seed {})", kind.display_name(), config.seed);
        }
    }
    format!("{config:?}")
}

/// Shared cancel-time mark for measuring cooperative-cancellation latency:
/// the winner stamps it immediately before tripping the [`CancelToken`];
/// losers subtract it from their own finish time.
struct CancelMark(Mutex<Option<Instant>>);

impl CancelMark {
    fn new() -> Self {
        CancelMark(Mutex::new(None))
    }

    fn stamp(&self) {
        *self.0.lock().expect("cancel mark") = Some(Instant::now());
    }

    /// Latency from the stamp to `finish`; `None` if the race was never
    /// cancelled or this worker finished before the stamp.
    fn latency(&self, finish: Instant) -> Option<std::time::Duration> {
        self.0.lock().expect("cancel mark").and_then(|t| finish.checked_duration_since(t))
    }
}

/// A diversified portfolio of `n` engine configurations.
///
/// Worker 0 is the plain PBS II preset with seed 0 — *identical* to the
/// sequential default — so a 1-worker portfolio explores exactly the
/// sequential search tree. Further workers cycle through the Galena,
/// Pueblo and legacy-PBS presets (three explanation strategies × two
/// restart/phase policies) and carry their worker index as the
/// diversification seed, which deterministically perturbs initial phases
/// and VSIDS tie-breaking. No wall-clock randomness anywhere: the same
/// `n` always yields the same portfolio.
pub fn portfolio_configs(n: usize) -> Vec<EngineConfig> {
    const CYCLE: [SolverKind; 4] =
        [SolverKind::PbsII, SolverKind::Galena, SolverKind::Pueblo, SolverKind::PbsLegacy];
    (0..n.max(1))
        .map(|i| {
            let kind = CYCLE[i % CYCLE.len()];
            kind.engine_config().expect("CDCL kind").with_seed(i as u64)
        })
        .collect()
}

/// Races one [`PbEngine`] per config on the decision problem; the first
/// worker to answer Sat or Unsat cancels the rest.
///
/// With a single config this degenerates to the sequential solve (plus one
/// scoped thread). All workers share the caller's `budget` — its deadline
/// is armed once, here, so setup and losing workers don't extend it.
///
/// # Panics
///
/// Panics if `configs` is empty.
pub fn solve_portfolio(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
) -> PortfolioOutcome {
    solve_portfolio_recorded(formula, configs, budget, &Recorder::disabled())
}

/// [`solve_portfolio`] with observability: each worker flushes its search
/// counters into `recorder` and records a [`WorkerTelemetry`] entry
/// (configuration, own counters, whether it won, cancellation latency,
/// run time) on exit. A disabled recorder makes this identical to
/// [`solve_portfolio`].
///
/// # Example
///
/// ```
/// use sbgc_formula::PbFormula;
/// use sbgc_obs::Recorder;
/// use sbgc_pb::{portfolio_configs, solve_portfolio_recorded, Budget};
///
/// let mut f = PbFormula::new();
/// let a = f.new_var().positive();
/// let b = f.new_var().positive();
/// f.add_clause([a, b]);
///
/// let recorder = Recorder::new();
/// let out =
///     solve_portfolio_recorded(&f, &portfolio_configs(2), &Budget::unlimited(), &recorder);
/// assert!(out.outcome.is_sat());
/// let workers = recorder.workers();
/// assert_eq!(workers.len(), 2);
/// assert_eq!(workers.iter().filter(|w| w.won).count(), 1);
/// ```
///
/// # Panics
///
/// Panics if `configs` is empty.
pub fn solve_portfolio_recorded(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
) -> PortfolioOutcome {
    assert!(!configs.is_empty(), "portfolio needs at least one config");
    let budget = budget.started();
    let race = CancelToken::new();
    let cancel_mark = CancelMark::new();
    let winner: Mutex<Option<(usize, SolveOutcome)>> = Mutex::new(None);
    let stats: Mutex<PbStats> = Mutex::new(PbStats::default());

    std::thread::scope(|s| {
        for (index, &config) in configs.iter().enumerate() {
            let worker_budget = budget.clone().with_cancel_token(race.clone());
            let (race, winner, stats, cancel_mark) = (&race, &winner, &stats, &cancel_mark);
            s.spawn(move || {
                let run_start = Instant::now();
                let mut engine = PbEngine::from_formula(formula, config);
                engine.set_recorder(recorder.clone());
                let out = engine.solve_with_budget(&worker_budget);
                let finish = Instant::now();
                add_stats(&mut stats.lock().expect("stats lock"), engine.stats());
                let mut won = false;
                if matches!(out, SolveOutcome::Sat(_) | SolveOutcome::Unsat) {
                    let mut w = winner.lock().expect("winner lock");
                    if w.is_none() {
                        *w = Some((index, out));
                        cancel_mark.stamp();
                        race.cancel();
                        won = true;
                    }
                }
                if recorder.is_enabled() {
                    engine.flush_recorder();
                    recorder.record_worker(WorkerTelemetry {
                        index,
                        seed: config.seed,
                        config: config_label(&config),
                        search: engine.stats().into(),
                        won,
                        cancel_latency: if won { None } else { cancel_mark.latency(finish) },
                        run_time: finish.duration_since(run_start),
                    });
                }
            });
        }
    });

    let (winner, outcome) = match winner.into_inner().expect("winner lock") {
        Some((index, out)) => (Some((index, configs[index])), out),
        None => (None, SolveOutcome::Unknown),
    };
    PortfolioOutcome { outcome, winner, stats: stats.into_inner().expect("stats lock") }
}

/// The shared incumbent of an optimization race: the best objective value
/// (an `AtomicU64`, `u64::MAX` = none yet) plus a model attaining it.
///
/// Update protocol: the model goes into the mutex *before* the value is
/// published with `fetch_min`, so any worker that observes value `v` in
/// the atomic will find a model of value ≤ `v` behind the lock.
struct Incumbent {
    bound: AtomicU64,
    model: Mutex<Option<(u64, Assignment)>>,
}

impl Incumbent {
    fn new() -> Self {
        Incumbent { bound: AtomicU64::new(u64::MAX), model: Mutex::new(None) }
    }

    /// Records `value`/`model` if it improves the incumbent. Returns the
    /// best bound after the update.
    fn offer(&self, value: u64, model: &Assignment) -> u64 {
        {
            let mut m = self.model.lock().expect("incumbent lock");
            if m.as_ref().is_none_or(|(b, _)| value < *b) {
                *m = Some((value, model.clone()));
            }
        }
        self.bound.fetch_min(value, Ordering::Release).min(value)
    }

    fn bound(&self) -> u64 {
        self.bound.load(Ordering::Acquire)
    }

    /// Clones the current best (value, model) pair.
    fn snapshot(&self) -> Option<(u64, Assignment)> {
        self.model.lock().expect("incumbent lock").clone()
    }

    fn take(self) -> Option<(u64, Assignment)> {
        self.model.into_inner().expect("incumbent lock")
    }
}

/// Adds `obj ≤ cut` to `engine` unless an equal or tighter cut is already
/// present, tracking the tightest cut in `local_cut`.
fn strengthen(
    engine: &mut PbEngine,
    objective: &sbgc_formula::Objective,
    local_cut: &mut Option<u64>,
    cut: u64,
) {
    if local_cut.is_none_or(|c| cut < c) {
        engine.add_pb(PbConstraint::at_most(
            objective.terms().iter().map(|&(c, l)| (c as i64, l)),
            cut as i64,
        ));
        *local_cut = Some(cut);
    }
}

/// Races one iterated-strengthening minimization loop per config.
///
/// Workers share their incumbent through an [`AtomicU64`] best bound: at
/// each iteration a worker adopts the tightest known bound as an objective
/// cut (`obj ≤ best − 1`), whether it was found locally or by a peer. The
/// first worker to *prove* optimality (UNSAT under a cut) or infeasibility
/// (UNSAT with no cut) cancels the rest. If the budget runs out first, the
/// best shared incumbent is returned as `Feasible`.
///
/// Soundness of the UNSAT-under-cut case: every cut `obj ≤ c` is derived
/// from a genuine model of value `c + 1` (local or shared), so the shared
/// bound is ≤ `c + 1` when the cut exists; UNSAT proves no model of value
/// ≤ `c` exists, so the shared bound is exactly `c + 1` and optimal.
///
/// # Panics
///
/// Panics if `configs` is empty or the formula has no objective.
pub fn optimize_portfolio(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
) -> PortfolioOptOutcome {
    optimize_portfolio_recorded(formula, configs, budget, &Recorder::disabled())
}

/// [`optimize_portfolio`] with observability: each worker flushes its
/// search counters into `recorder` and records a [`WorkerTelemetry`]
/// entry on exit. A disabled recorder makes this identical to
/// [`optimize_portfolio`].
pub fn optimize_portfolio_recorded(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
) -> PortfolioOptOutcome {
    assert!(!configs.is_empty(), "portfolio needs at least one config");
    let objective = formula.objective().expect("formula must carry an objective").clone();
    let budget = budget.started();
    let race = CancelToken::new();
    let cancel_mark = CancelMark::new();
    let incumbent = Incumbent::new();
    let winner: Mutex<Option<(usize, OptOutcome)>> = Mutex::new(None);
    let stats: Mutex<PbStats> = Mutex::new(PbStats::default());

    std::thread::scope(|s| {
        for (index, &config) in configs.iter().enumerate() {
            let worker_budget = budget.clone().with_cancel_token(race.clone());
            let (race, winner, stats, incumbent, objective, cancel_mark) =
                (&race, &winner, &stats, &incumbent, &objective, &cancel_mark);
            s.spawn(move || {
                let run_start = Instant::now();
                let mut engine = PbEngine::from_formula(formula, config);
                engine.set_recorder(recorder.clone());
                // Tightest objective cut this worker's engine carries.
                let mut local_cut: Option<u64> = None;
                let decided = loop {
                    // Adopt the shared incumbent before (re)solving.
                    let shared = incumbent.bound();
                    if shared == 0 {
                        // A peer holds a zero-cost model: globally optimal,
                        // that peer records the win.
                        break None;
                    }
                    if shared != u64::MAX {
                        strengthen(&mut engine, objective, &mut local_cut, shared - 1);
                    }
                    if worker_budget.exhausted(engine.stats().conflicts) {
                        break None;
                    }
                    match engine.solve_with_budget(&worker_budget) {
                        SolveOutcome::Sat(model) => {
                            let value = objective.value(&model).expect("total model");
                            incumbent.offer(value, &model);
                            if value == 0 {
                                break Some(OptOutcome::Optimal { value: 0, model });
                            }
                            strengthen(&mut engine, objective, &mut local_cut, value - 1);
                        }
                        SolveOutcome::Unsat => {
                            break Some(match local_cut {
                                None => OptOutcome::Infeasible,
                                Some(cut) => {
                                    // No model of value ≤ cut exists, and a
                                    // model of value cut + 1 is in the
                                    // incumbent (see the update protocol).
                                    let (value, model) =
                                        incumbent.snapshot().expect("cut implies an incumbent");
                                    debug_assert_eq!(value, cut + 1);
                                    OptOutcome::Optimal { value, model }
                                }
                            });
                        }
                        SolveOutcome::Unknown => break None,
                    }
                };
                let finish = Instant::now();
                add_stats(&mut stats.lock().expect("stats lock"), engine.stats());
                let mut won = false;
                if let Some(outcome) = decided {
                    let mut w = winner.lock().expect("winner lock");
                    if w.is_none() {
                        *w = Some((index, outcome));
                        cancel_mark.stamp();
                        race.cancel();
                        won = true;
                    }
                }
                if recorder.is_enabled() {
                    engine.flush_recorder();
                    recorder.record_worker(WorkerTelemetry {
                        index,
                        seed: config.seed,
                        config: config_label(&config),
                        search: engine.stats().into(),
                        won,
                        cancel_latency: if won { None } else { cancel_mark.latency(finish) },
                        run_time: finish.duration_since(run_start),
                    });
                }
            });
        }
    });

    let stats = stats.into_inner().expect("stats lock");
    if let Some((index, outcome)) = winner.into_inner().expect("winner lock") {
        return PortfolioOptOutcome { outcome, winner: Some((index, configs[index])), stats };
    }
    let outcome = match incumbent.take() {
        Some((value, model)) => OptOutcome::Feasible { value, model },
        None => OptOutcome::Unknown,
    };
    PortfolioOptOutcome { outcome, winner: None, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::{Lit, Objective, Var};

    fn covering() -> PbFormula {
        // minimize y0 + y1 + y2 s.t. pairwise covers; optimum 2.
        let mut f = PbFormula::new();
        let y: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_clause([y[0], y[1]]);
        f.add_clause([y[1], y[2]]);
        f.add_clause([y[0], y[2]]);
        f.set_objective(Objective::minimize(y.iter().map(|&l| (1, l))));
        f
    }

    #[test]
    fn configs_are_deterministic_and_start_sequential() {
        let a = portfolio_configs(4);
        let b = portfolio_configs(4);
        assert_eq!(a, b);
        assert_eq!(a[0], SolverKind::PbsII.engine_config().expect("cdcl"));
        // All workers distinct (kind or seed differs).
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert_ne!(a[i], a[j]);
            }
        }
    }

    #[test]
    fn decision_race_agrees_with_sequential() {
        let f = covering();
        for n in 1..=4 {
            let out = solve_portfolio(&f, &portfolio_configs(n), &Budget::unlimited());
            assert!(matches!(out.outcome, SolveOutcome::Sat(_)), "n={n}");
            assert!(out.winner.is_some());
            assert!(out.stats.decisions > 0);
        }
    }

    #[test]
    fn optimization_race_finds_the_optimum() {
        let f = covering();
        for n in 1..=4 {
            let out = optimize_portfolio(&f, &portfolio_configs(n), &Budget::unlimited());
            match out.outcome {
                OptOutcome::Optimal { value, ref model } => {
                    assert_eq!(value, 2, "n={n}");
                    assert!(f.is_satisfied_by(model), "n={n}");
                }
                ref other => panic!("n={n}: expected optimal, got {other:?}"),
            }
            assert!(out.winner.is_some());
        }
    }

    #[test]
    fn infeasibility_is_detected() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_unit(a);
        f.add_unit(!a);
        f.set_objective(Objective::minimize([(1, a)]));
        let out = optimize_portfolio(&f, &portfolio_configs(3), &Budget::unlimited());
        assert!(out.outcome.is_infeasible());
    }

    #[test]
    fn zero_budget_cancels_cleanly() {
        let f = covering();
        let b = Budget::unlimited().with_max_conflicts(0);
        let out = optimize_portfolio(&f, &portfolio_configs(4), &b);
        assert!(!out.outcome.is_infeasible());
    }

    #[test]
    fn recorded_race_captures_worker_telemetry() {
        let f = covering();
        let rec = Recorder::new();
        let out =
            optimize_portfolio_recorded(&f, &portfolio_configs(3), &Budget::unlimited(), &rec);
        assert!(out.winner.is_some());
        let workers = rec.workers();
        assert_eq!(workers.len(), 3, "every worker records telemetry");
        assert_eq!(workers.iter().filter(|w| w.won).count(), 1, "exactly one winner");
        for w in &workers {
            assert_eq!(w.seed, w.index as u64, "portfolio seeds are worker indices");
            assert!(!w.config.is_empty());
        }
        // The engines flushed their counters into the shared recorder.
        assert!(rec.counter(sbgc_obs::Counter::Decisions) > 0);
        assert_eq!(rec.counter(sbgc_obs::Counter::Decisions), out.stats.decisions);
    }

    #[test]
    fn disabled_recorder_keeps_portfolio_silent() {
        let f = covering();
        let rec = Recorder::disabled();
        let out = solve_portfolio_recorded(&f, &portfolio_configs(2), &Budget::unlimited(), &rec);
        assert!(matches!(out.outcome, SolveOutcome::Sat(_)));
        assert!(rec.workers().is_empty());
        assert_eq!(rec.counter(sbgc_obs::Counter::Decisions), 0);
    }

    #[test]
    fn config_labels_name_the_presets() {
        let labels: Vec<String> = portfolio_configs(4).iter().map(config_label).collect();
        assert_eq!(labels[0], "PBS II (seed 0)");
        assert_eq!(labels[1], "Galena (seed 1)");
        assert_eq!(labels[2], "Pueblo (seed 2)");
        assert_eq!(labels[3], "PBS (seed 3)");
    }

    #[test]
    fn pre_cancelled_budget_returns_unknown() {
        let f = covering();
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::unlimited().with_cancel_token(token);
        let out = solve_portfolio(&f, &portfolio_configs(4), &b);
        assert!(matches!(out.outcome, SolveOutcome::Unknown));
        assert!(out.winner.is_none());
    }
}

//! Parallel portfolio solving with cooperative cancellation and panic
//! isolation.
//!
//! The paper observes that PBS II, Galena and Pueblo — three configurations
//! of the same CDCL-PB framework — "exhibit the same performance trends"
//! but differ in *which* instances each wins. A portfolio exploits exactly
//! that diversity: race one worker per [`EngineConfig`] on the same
//! formula, take the first definitive answer, and cancel the rest through
//! the shared [`CancelToken`] carried by every worker's [`Budget`] (a
//! losing worker stops at its next stride-64 budget check, i.e. within
//! ~64 conflicts).
//!
//! Two entry points mirror the sequential API:
//!
//! * [`solve_portfolio`] races decision solves ([`PbEngine`] workers);
//! * [`optimize_portfolio`] races iterated-strengthening optimization
//!   loops that share their incumbent bound through an `AtomicU64`, so any
//!   worker's improvement immediately tightens every other worker's
//!   objective cut.
//!
//! Everything is built on `std::thread::scope` — no dependencies beyond
//! `std`.
//!
//! # Fault tolerance
//!
//! Each worker body runs under [`std::panic::catch_unwind`]: a panicking
//! worker dies alone while the survivors keep racing, and the race still
//! returns the first definitive answer. All shared state (winner slot,
//! summed stats, cancel mark, incumbent) is locked poison-tolerantly, so
//! a panic inside a critical section cannot wedge the surviving workers.
//! Dead workers are counted in [`PortfolioOutcome::failed_workers`] and —
//! with an enabled [`Recorder`] — recorded as [`WorkerTelemetry`] entries
//! whose `failed` field summarizes the panic payload. The deterministic
//! [`FaultPlan`] accepted by the `*_instrumented` entry points exists to
//! test exactly this machinery (see `docs/ROBUSTNESS.md`).

use crate::config::{EngineConfig, SolverKind};
use crate::engine::{PbEngine, PbStats};
use crate::optimize::OptOutcome;
use sbgc_formula::{Assignment, PbConstraint, PbFormula};
use sbgc_obs::{FaultPlan, Recorder, SearchCounters, WorkerTelemetry};
use sbgc_sat::{Budget, CancelToken, SolveOutcome};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Typed failure of a portfolio entry point — misuse conditions that were
/// previously reported by panicking, surfaced as values so callers can
/// degrade gracefully (see `docs/ROBUSTNESS.md`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortfolioError {
    /// The `configs` slice was empty: there is no worker to race.
    NoWorkers,
    /// [`optimize_portfolio`] was called on a formula without an
    /// objective; there is nothing to minimize.
    MissingObjective,
}

impl std::fmt::Display for PortfolioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortfolioError::NoWorkers => write!(f, "portfolio needs at least one config"),
            PortfolioError::MissingObjective => {
                write!(f, "optimize_portfolio requires a formula with an objective")
            }
        }
    }
}

impl std::error::Error for PortfolioError {}

/// Result of a [`solve_portfolio`] race.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The decision answer (first definitive one, else `Unknown`).
    pub outcome: SolveOutcome,
    /// Index (into the `configs` slice) and configuration of the worker
    /// that produced the definitive answer, when there was one.
    pub winner: Option<(usize, EngineConfig)>,
    /// Engine statistics summed over *all* workers — the total work spent,
    /// not just the winner's share.
    pub stats: PbStats,
    /// Number of workers that died (panicked) during the race. The race
    /// result comes from the survivors; a non-zero count alongside a
    /// definitive `outcome` means the portfolio degraded gracefully.
    pub failed_workers: usize,
}

/// Result of an [`optimize_portfolio`] race.
#[derive(Clone, Debug)]
pub struct PortfolioOptOutcome {
    /// The optimization answer (first worker to prove optimality or
    /// infeasibility wins; otherwise the best shared incumbent).
    pub outcome: OptOutcome,
    /// Index and configuration of the winning worker, when one proved the
    /// answer.
    pub winner: Option<(usize, EngineConfig)>,
    /// Engine statistics summed over all workers.
    pub stats: PbStats,
    /// Number of workers that died (panicked) during the race.
    pub failed_workers: usize,
}

/// Locks poison-tolerantly: a mutex poisoned by a panicking worker stays
/// usable for the survivors. All the portfolio's shared state is plain
/// data whose invariants hold between (not within) lock acquisitions, so
/// recovering the inner value is always sound here.
fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a `catch_unwind` payload for telemetry; panic messages are
/// almost always `&str` or `String`.
fn panic_summary(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

fn add_stats(total: &mut PbStats, s: PbStats) {
    total.decisions += s.decisions;
    total.conflicts += s.conflicts;
    total.propagations += s.propagations;
    total.restarts += s.restarts;
    total.learned += s.learned;
    total.deleted += s.deleted;
    total.pb_conflicts += s.pb_conflicts;
    total.learned_literals += s.learned_literals;
    // Keep the first exhaustion reason any worker reported; a decided race
    // clears it at the end (the answer supersedes the losers' exhaustion).
    total.exhaust = total.exhaust.or(s.exhaust);
}

/// Human-readable label of a worker configuration: the preset name when
/// the config matches one of the named [`SolverKind`]s, plus the seed.
fn config_label(config: &EngineConfig) -> String {
    const NAMED: [SolverKind; 4] =
        [SolverKind::PbsII, SolverKind::Galena, SolverKind::Pueblo, SolverKind::PbsLegacy];
    let base = config.with_seed(0);
    for kind in NAMED {
        if kind.engine_config() == Some(base) {
            return format!("{} (seed {})", kind.display_name(), config.seed);
        }
    }
    format!("{config:?}")
}

/// Shared cancel-time mark for measuring cooperative-cancellation latency:
/// the winner stamps it immediately before tripping the [`CancelToken`];
/// losers subtract it from their own finish time.
struct CancelMark(Mutex<Option<Instant>>);

impl CancelMark {
    fn new() -> Self {
        CancelMark(Mutex::new(None))
    }

    fn stamp(&self) {
        *lock_tolerant(&self.0) = Some(Instant::now());
    }

    /// Latency from the stamp to `finish`; `None` if the race was never
    /// cancelled or this worker finished before the stamp.
    fn latency(&self, finish: Instant) -> Option<std::time::Duration> {
        lock_tolerant(&self.0).and_then(|t| finish.checked_duration_since(t))
    }
}

/// A diversified portfolio of `n` engine configurations.
///
/// Worker 0 is the plain PBS II preset with seed 0 — *identical* to the
/// sequential default — so a 1-worker portfolio explores exactly the
/// sequential search tree. Further workers cycle through the Galena,
/// Pueblo and legacy-PBS presets (three explanation strategies × two
/// restart/phase policies) and carry their worker index as the
/// diversification seed, which deterministically perturbs initial phases
/// and VSIDS tie-breaking. No wall-clock randomness anywhere: the same
/// `n` always yields the same portfolio.
pub fn portfolio_configs(n: usize) -> Vec<EngineConfig> {
    const CYCLE: [SolverKind; 4] =
        [SolverKind::PbsII, SolverKind::Galena, SolverKind::Pueblo, SolverKind::PbsLegacy];
    (0..n.max(1))
        .map(|i| {
            let kind = CYCLE[i % CYCLE.len()];
            kind.engine_config().expect("CDCL kind").with_seed(i as u64)
        })
        .collect()
}

/// Races one [`PbEngine`] per config on the decision problem; the first
/// worker to answer Sat or Unsat cancels the rest.
///
/// With a single config this degenerates to the sequential solve (plus one
/// scoped thread). All workers share the caller's `budget` — its deadline
/// is armed once, here, so setup and losing workers don't extend it.
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty.
pub fn solve_portfolio(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
) -> Result<PortfolioOutcome, PortfolioError> {
    solve_portfolio_recorded(formula, configs, budget, &Recorder::disabled())
}

/// [`solve_portfolio`] with observability: each worker flushes its search
/// counters into `recorder` and records a [`WorkerTelemetry`] entry
/// (configuration, own counters, whether it won, cancellation latency,
/// run time) on exit. A disabled recorder makes this identical to
/// [`solve_portfolio`].
///
/// # Example
///
/// ```
/// use sbgc_formula::PbFormula;
/// use sbgc_obs::Recorder;
/// use sbgc_pb::{portfolio_configs, solve_portfolio_recorded, Budget};
///
/// let mut f = PbFormula::new();
/// let a = f.new_var().positive();
/// let b = f.new_var().positive();
/// f.add_clause([a, b]);
///
/// let recorder = Recorder::new();
/// let out =
///     solve_portfolio_recorded(&f, &portfolio_configs(2), &Budget::unlimited(), &recorder)
///         .expect("non-empty portfolio");
/// assert!(out.outcome.is_sat());
/// let workers = recorder.workers();
/// assert_eq!(workers.len(), 2);
/// assert_eq!(workers.iter().filter(|w| w.won).count(), 1);
/// ```
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty.
pub fn solve_portfolio_recorded(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
) -> Result<PortfolioOutcome, PortfolioError> {
    solve_portfolio_instrumented(formula, configs, budget, recorder, None)
}

/// [`solve_portfolio_recorded`] plus deterministic fault injection: when
/// `fault` schedules a panic for a worker, that worker's solve is capped
/// at the scheduled conflict count and then panics — exercising the
/// panic-isolation path on purpose. Production callers pass `None`, which
/// injects nothing.
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty.
pub fn solve_portfolio_instrumented(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
    fault: Option<&FaultPlan>,
) -> Result<PortfolioOutcome, PortfolioError> {
    if configs.is_empty() {
        return Err(PortfolioError::NoWorkers);
    }
    let budget = budget.started();
    let race = CancelToken::new();
    let cancel_mark = CancelMark::new();
    let winner: Mutex<Option<(usize, SolveOutcome)>> = Mutex::new(None);
    let stats: Mutex<PbStats> = Mutex::new(PbStats::default());
    let failed = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for (index, &config) in configs.iter().enumerate() {
            let worker_budget = budget.clone().with_cancel_token(race.clone());
            let (race, winner, stats, cancel_mark, failed) =
                (&race, &winner, &stats, &cancel_mark, &failed);
            s.spawn(move || {
                let run_start = Instant::now();
                let injected = fault.and_then(|p| p.worker_panic(index));
                let body = catch_unwind(AssertUnwindSafe(|| {
                    let worker_budget = match injected {
                        Some(n) => worker_budget.clone().with_max_conflicts(n),
                        None => worker_budget,
                    };
                    let mut engine = PbEngine::from_formula(formula, config);
                    engine.set_recorder(recorder.clone());
                    let out = engine.solve_with_budget(&worker_budget);
                    if let Some(n) = injected {
                        panic!("injected fault: worker {index} panicked after {n} conflicts");
                    }
                    let finish = Instant::now();
                    add_stats(&mut lock_tolerant(stats), engine.stats());
                    let mut won = false;
                    if matches!(out, SolveOutcome::Sat(_) | SolveOutcome::Unsat) {
                        let mut w = lock_tolerant(winner);
                        if w.is_none() {
                            *w = Some((index, out));
                            cancel_mark.stamp();
                            race.cancel();
                            won = true;
                        }
                    }
                    if recorder.is_enabled() {
                        engine.flush_recorder();
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            seed: config.seed,
                            config: config_label(&config),
                            search: engine.stats().into(),
                            won,
                            cancel_latency: if won { None } else { cancel_mark.latency(finish) },
                            run_time: finish.duration_since(run_start),
                            failed: None,
                        });
                    }
                }));
                if let Err(payload) = body {
                    failed.fetch_add(1, Ordering::Relaxed);
                    if recorder.is_enabled() {
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            seed: config.seed,
                            config: config_label(&config),
                            search: SearchCounters::default(),
                            won: false,
                            cancel_latency: None,
                            run_time: run_start.elapsed(),
                            failed: Some(panic_summary(payload.as_ref())),
                        });
                    }
                }
            });
        }
    });

    let (winner, outcome) = match lock_tolerant(&winner).take() {
        Some((index, out)) => (Some((index, configs[index])), out),
        None => (None, SolveOutcome::Unknown),
    };
    let mut stats = *lock_tolerant(&stats);
    if !matches!(outcome, SolveOutcome::Unknown) {
        // The race was decided; the losers' budget exhaustion is not the
        // outcome's exhaustion.
        stats.exhaust = None;
    }
    Ok(PortfolioOutcome { outcome, winner, stats, failed_workers: failed.load(Ordering::Relaxed) })
}

/// The shared incumbent of an optimization race: the best objective value
/// (an `AtomicU64`, `u64::MAX` = none yet) plus a model attaining it.
///
/// Update protocol: the model goes into the mutex *before* the value is
/// published with `fetch_min`, so any worker that observes value `v` in
/// the atomic will find a model of value ≤ `v` behind the lock.
struct Incumbent {
    bound: AtomicU64,
    model: Mutex<Option<(u64, Assignment)>>,
}

impl Incumbent {
    fn new() -> Self {
        Incumbent { bound: AtomicU64::new(u64::MAX), model: Mutex::new(None) }
    }

    /// Records `value`/`model` if it improves the incumbent. Returns the
    /// best bound after the update.
    fn offer(&self, value: u64, model: &Assignment) -> u64 {
        {
            let mut m = lock_tolerant(&self.model);
            if m.as_ref().is_none_or(|(b, _)| value < *b) {
                *m = Some((value, model.clone()));
            }
        }
        self.bound.fetch_min(value, Ordering::Release).min(value)
    }

    fn bound(&self) -> u64 {
        self.bound.load(Ordering::Acquire)
    }

    /// Clones the current best (value, model) pair.
    fn snapshot(&self) -> Option<(u64, Assignment)> {
        lock_tolerant(&self.model).clone()
    }

    fn take(self) -> Option<(u64, Assignment)> {
        self.model.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Adds `obj ≤ cut` to `engine` unless an equal or tighter cut is already
/// present, tracking the tightest cut in `local_cut`.
fn strengthen(
    engine: &mut PbEngine,
    objective: &sbgc_formula::Objective,
    local_cut: &mut Option<u64>,
    cut: u64,
) {
    if local_cut.is_none_or(|c| cut < c) {
        engine.add_pb(PbConstraint::at_most(
            objective.terms().iter().map(|&(c, l)| (c as i64, l)),
            cut as i64,
        ));
        *local_cut = Some(cut);
    }
}

/// Races one iterated-strengthening minimization loop per config.
///
/// Workers share their incumbent through an [`AtomicU64`] best bound: at
/// each iteration a worker adopts the tightest known bound as an objective
/// cut (`obj ≤ best − 1`), whether it was found locally or by a peer. The
/// first worker to *prove* optimality (UNSAT under a cut) or infeasibility
/// (UNSAT with no cut) cancels the rest. If the budget runs out first, the
/// best shared incumbent is returned as `Feasible`.
///
/// Soundness of the UNSAT-under-cut case: every cut `obj ≤ c` is derived
/// from a genuine model of value `c + 1` (local or shared), so the shared
/// bound is ≤ `c + 1` when the cut exists; UNSAT proves no model of value
/// ≤ `c` exists, so the shared bound is exactly `c + 1` and optimal.
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty,
/// [`PortfolioError::MissingObjective`] if the formula has no objective.
pub fn optimize_portfolio(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
) -> Result<PortfolioOptOutcome, PortfolioError> {
    optimize_portfolio_recorded(formula, configs, budget, &Recorder::disabled())
}

/// [`optimize_portfolio`] with observability: each worker flushes its
/// search counters into `recorder` and records a [`WorkerTelemetry`]
/// entry on exit. A disabled recorder makes this identical to
/// [`optimize_portfolio`].
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty,
/// [`PortfolioError::MissingObjective`] if the formula has no objective.
pub fn optimize_portfolio_recorded(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
) -> Result<PortfolioOptOutcome, PortfolioError> {
    optimize_portfolio_instrumented(formula, configs, budget, recorder, None)
}

/// [`optimize_portfolio_recorded`] plus deterministic fault injection
/// (see [`solve_portfolio_instrumented`]). Production callers pass `None`.
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty,
/// [`PortfolioError::MissingObjective`] if the formula has no objective.
pub fn optimize_portfolio_instrumented(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
    fault: Option<&FaultPlan>,
) -> Result<PortfolioOptOutcome, PortfolioError> {
    if configs.is_empty() {
        return Err(PortfolioError::NoWorkers);
    }
    let objective = formula.objective().ok_or(PortfolioError::MissingObjective)?.clone();
    let budget = budget.started();
    let race = CancelToken::new();
    let cancel_mark = CancelMark::new();
    let incumbent = Incumbent::new();
    let winner: Mutex<Option<(usize, OptOutcome)>> = Mutex::new(None);
    let stats: Mutex<PbStats> = Mutex::new(PbStats::default());
    let failed = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for (index, &config) in configs.iter().enumerate() {
            let worker_budget = budget.clone().with_cancel_token(race.clone());
            let (race, winner, stats, incumbent, objective, cancel_mark, failed) =
                (&race, &winner, &stats, &incumbent, &objective, &cancel_mark, &failed);
            s.spawn(move || {
                let run_start = Instant::now();
                let injected = fault.and_then(|p| p.worker_panic(index));
                let body = catch_unwind(AssertUnwindSafe(|| {
                    let worker_budget = match injected {
                        Some(n) => worker_budget.clone().with_max_conflicts(n),
                        None => worker_budget,
                    };
                    let mut engine = PbEngine::from_formula(formula, config);
                    engine.set_recorder(recorder.clone());
                    // Tightest objective cut this worker's engine carries.
                    let mut local_cut: Option<u64> = None;
                    let decided = loop {
                        // Adopt the shared incumbent before (re)solving.
                        let shared = incumbent.bound();
                        if shared == 0 {
                            // A peer holds a zero-cost model: globally optimal,
                            // that peer records the win.
                            break None;
                        }
                        if shared != u64::MAX {
                            strengthen(&mut engine, objective, &mut local_cut, shared - 1);
                        }
                        if worker_budget.exhausted(engine.stats().conflicts) {
                            break None;
                        }
                        match engine.solve_with_budget(&worker_budget) {
                            SolveOutcome::Sat(model) => {
                                let value = objective.value(&model).expect("total model");
                                incumbent.offer(value, &model);
                                if value == 0 {
                                    break Some(OptOutcome::Optimal { value: 0, model });
                                }
                                strengthen(&mut engine, objective, &mut local_cut, value - 1);
                            }
                            SolveOutcome::Unsat => {
                                break Some(match local_cut {
                                    None => OptOutcome::Infeasible,
                                    Some(cut) => {
                                        // No model of value ≤ cut exists, and a
                                        // model of value cut + 1 is in the
                                        // incumbent (see the update protocol).
                                        let (value, model) =
                                            incumbent.snapshot().expect("cut implies an incumbent");
                                        debug_assert_eq!(value, cut + 1);
                                        OptOutcome::Optimal { value, model }
                                    }
                                });
                            }
                            SolveOutcome::Unknown => break None,
                        }
                    };
                    if let Some(n) = injected {
                        panic!("injected fault: worker {index} panicked after {n} conflicts");
                    }
                    let finish = Instant::now();
                    add_stats(&mut lock_tolerant(stats), engine.stats());
                    let mut won = false;
                    if let Some(outcome) = decided {
                        let mut w = lock_tolerant(winner);
                        if w.is_none() {
                            *w = Some((index, outcome));
                            cancel_mark.stamp();
                            race.cancel();
                            won = true;
                        }
                    }
                    if recorder.is_enabled() {
                        engine.flush_recorder();
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            seed: config.seed,
                            config: config_label(&config),
                            search: engine.stats().into(),
                            won,
                            cancel_latency: if won { None } else { cancel_mark.latency(finish) },
                            run_time: finish.duration_since(run_start),
                            failed: None,
                        });
                    }
                }));
                if let Err(payload) = body {
                    failed.fetch_add(1, Ordering::Relaxed);
                    if recorder.is_enabled() {
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            seed: config.seed,
                            config: config_label(&config),
                            search: SearchCounters::default(),
                            won: false,
                            cancel_latency: None,
                            run_time: run_start.elapsed(),
                            failed: Some(panic_summary(payload.as_ref())),
                        });
                    }
                }
            });
        }
    });

    let mut stats = *lock_tolerant(&stats);
    let failed_workers = failed.load(Ordering::Relaxed);
    if let Some((index, outcome)) = lock_tolerant(&winner).take() {
        stats.exhaust = None;
        return Ok(PortfolioOptOutcome {
            outcome,
            winner: Some((index, configs[index])),
            stats,
            failed_workers,
        });
    }
    let outcome = match incumbent.take() {
        Some((value, model)) => OptOutcome::Feasible { value, model },
        None => OptOutcome::Unknown,
    };
    Ok(PortfolioOptOutcome { outcome, winner: None, stats, failed_workers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::{Lit, Objective, Var};

    fn covering() -> PbFormula {
        // minimize y0 + y1 + y2 s.t. pairwise covers; optimum 2.
        let mut f = PbFormula::new();
        let y: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_clause([y[0], y[1]]);
        f.add_clause([y[1], y[2]]);
        f.add_clause([y[0], y[2]]);
        f.set_objective(Objective::minimize(y.iter().map(|&l| (1, l))));
        f
    }

    #[test]
    fn configs_are_deterministic_and_start_sequential() {
        let a = portfolio_configs(4);
        let b = portfolio_configs(4);
        assert_eq!(a, b);
        assert_eq!(a[0], SolverKind::PbsII.engine_config().expect("cdcl"));
        // All workers distinct (kind or seed differs).
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert_ne!(a[i], a[j]);
            }
        }
    }

    #[test]
    fn decision_race_agrees_with_sequential() {
        let f = covering();
        for n in 1..=4 {
            let out = solve_portfolio(&f, &portfolio_configs(n), &Budget::unlimited())
                .expect("non-empty portfolio");
            assert!(matches!(out.outcome, SolveOutcome::Sat(_)), "n={n}");
            assert!(out.winner.is_some());
            assert!(out.stats.decisions > 0);
            assert_eq!(out.failed_workers, 0);
        }
    }

    #[test]
    fn optimization_race_finds_the_optimum() {
        let f = covering();
        for n in 1..=4 {
            let out = optimize_portfolio(&f, &portfolio_configs(n), &Budget::unlimited())
                .expect("non-empty portfolio");
            match out.outcome {
                OptOutcome::Optimal { value, ref model } => {
                    assert_eq!(value, 2, "n={n}");
                    assert!(f.is_satisfied_by(model), "n={n}");
                }
                ref other => panic!("n={n}: expected optimal, got {other:?}"),
            }
            assert!(out.winner.is_some());
        }
    }

    #[test]
    fn infeasibility_is_detected() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_unit(a);
        f.add_unit(!a);
        f.set_objective(Objective::minimize([(1, a)]));
        let out = optimize_portfolio(&f, &portfolio_configs(3), &Budget::unlimited())
            .expect("non-empty portfolio");
        assert!(out.outcome.is_infeasible());
    }

    #[test]
    fn empty_portfolio_is_a_typed_error() {
        let f = covering();
        assert_eq!(
            solve_portfolio(&f, &[], &Budget::unlimited()).unwrap_err(),
            PortfolioError::NoWorkers
        );
        assert_eq!(
            optimize_portfolio(&f, &[], &Budget::unlimited()).unwrap_err(),
            PortfolioError::NoWorkers
        );
    }

    #[test]
    fn missing_objective_is_a_typed_error() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_unit(a);
        let err = optimize_portfolio(&f, &portfolio_configs(2), &Budget::unlimited()).unwrap_err();
        assert_eq!(err, PortfolioError::MissingObjective);
        assert!(err.to_string().contains("objective"));
    }

    #[test]
    fn zero_budget_cancels_cleanly() {
        let f = covering();
        let b = Budget::unlimited().with_max_conflicts(0);
        let out = optimize_portfolio(&f, &portfolio_configs(4), &b).expect("non-empty portfolio");
        assert!(!out.outcome.is_infeasible());
    }

    #[test]
    fn recorded_race_captures_worker_telemetry() {
        let f = covering();
        let rec = Recorder::new();
        let out =
            optimize_portfolio_recorded(&f, &portfolio_configs(3), &Budget::unlimited(), &rec)
                .expect("non-empty portfolio");
        assert!(out.winner.is_some());
        let workers = rec.workers();
        assert_eq!(workers.len(), 3, "every worker records telemetry");
        assert_eq!(workers.iter().filter(|w| w.won).count(), 1, "exactly one winner");
        for w in &workers {
            assert_eq!(w.seed, w.index as u64, "portfolio seeds are worker indices");
            assert!(!w.config.is_empty());
            assert!(w.failed.is_none());
        }
        // The engines flushed their counters into the shared recorder.
        assert!(rec.counter(sbgc_obs::Counter::Decisions) > 0);
        assert_eq!(rec.counter(sbgc_obs::Counter::Decisions), out.stats.decisions);
    }

    #[test]
    fn disabled_recorder_keeps_portfolio_silent() {
        let f = covering();
        let rec = Recorder::disabled();
        let out = solve_portfolio_recorded(&f, &portfolio_configs(2), &Budget::unlimited(), &rec)
            .expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Sat(_)));
        assert!(rec.workers().is_empty());
        assert_eq!(rec.counter(sbgc_obs::Counter::Decisions), 0);
    }

    #[test]
    fn config_labels_name_the_presets() {
        let labels: Vec<String> = portfolio_configs(4).iter().map(config_label).collect();
        assert_eq!(labels[0], "PBS II (seed 0)");
        assert_eq!(labels[1], "Galena (seed 1)");
        assert_eq!(labels[2], "Pueblo (seed 2)");
        assert_eq!(labels[3], "PBS (seed 3)");
    }

    #[test]
    fn pre_cancelled_budget_returns_unknown() {
        let f = covering();
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::unlimited().with_cancel_token(token);
        let out = solve_portfolio(&f, &portfolio_configs(4), &b).expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Unknown));
        assert!(out.winner.is_none());
    }

    #[test]
    fn injected_panic_leaves_survivors_winning() {
        let f = covering();
        let rec = Recorder::new();
        // Kill worker 1 immediately; workers 0 and 2 survive and decide.
        let plan = FaultPlan::new(0).with_worker_panic(1, 0);
        let out = optimize_portfolio_instrumented(
            &f,
            &portfolio_configs(3),
            &Budget::unlimited(),
            &rec,
            Some(&plan),
        )
        .expect("non-empty portfolio");
        match out.outcome {
            OptOutcome::Optimal { value, .. } => assert_eq!(value, 2),
            ref other => panic!("survivors must decide, got {other:?}"),
        }
        assert_eq!(out.failed_workers, 1);
        let (winner_index, _) = out.winner.expect("a survivor won");
        assert_ne!(winner_index, 1, "the dead worker cannot win");
        let workers = rec.workers();
        assert_eq!(workers.len(), 3, "dead workers still record telemetry");
        let dead: Vec<_> = workers.iter().filter(|w| w.failed.is_some()).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].index, 1);
        assert!(dead[0].failed.as_deref().unwrap().contains("injected fault"));
        assert!(!dead[0].won);
    }

    #[test]
    fn injected_panic_in_decision_race_is_survivable() {
        let f = covering();
        let plan = FaultPlan::new(7).with_worker_panic(0, 0);
        let out = solve_portfolio_instrumented(
            &f,
            &portfolio_configs(2),
            &Budget::unlimited(),
            &Recorder::disabled(),
            Some(&plan),
        )
        .expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Sat(_)));
        assert_eq!(out.failed_workers, 1);
        assert_eq!(out.winner.map(|(i, _)| i), Some(1));
    }

    #[test]
    fn all_workers_dead_degrades_gracefully() {
        let f = covering();
        let plan = FaultPlan::new(0).with_worker_panic(0, 0);
        let out = optimize_portfolio_instrumented(
            &f,
            &portfolio_configs(1),
            &Budget::unlimited(),
            &Recorder::disabled(),
            Some(&plan),
        )
        .expect("non-empty portfolio");
        assert!(matches!(out.outcome, OptOutcome::Unknown | OptOutcome::Feasible { .. }));
        assert_eq!(out.failed_workers, 1);
        assert!(out.winner.is_none());
    }
}

//! Parallel portfolio solving with cooperative cancellation and panic
//! isolation.
//!
//! The paper observes that PBS II, Galena and Pueblo — three configurations
//! of the same CDCL-PB framework — "exhibit the same performance trends"
//! but differ in *which* instances each wins. A portfolio exploits exactly
//! that diversity: race one worker per [`EngineConfig`] on the same
//! formula, take the first definitive answer, and cancel the rest through
//! the shared [`CancelToken`] carried by every worker's [`Budget`] (a
//! losing worker stops at its next stride-64 budget check, i.e. within
//! ~64 conflicts).
//!
//! Two entry points mirror the sequential API:
//!
//! * [`solve_portfolio`] races decision solves ([`PbEngine`] workers);
//! * [`optimize_portfolio`] races iterated-strengthening optimization
//!   loops that share their incumbent bound through an `AtomicU64`, so any
//!   worker's improvement immediately tightens every other worker's
//!   objective cut.
//!
//! Everything is built on `std::thread::scope` — no dependencies beyond
//! `std`.
//!
//! # Learned-clause sharing
//!
//! Workers in one race cooperate, not just compete: every race creates a
//! [`SharedClausePool`] and hands each worker a [`SharingHandle`], so
//! learned clauses that pass the glue filter (low LBD, short — see
//! [`SharingConfig`]) are exported to the pool and imported by every peer
//! at its next restart. Import happens only at restart boundaries, where
//! the trail is at the root level anyway, which keeps the propagation hot
//! loop free of locks (see `docs/DESIGN.md` §4f). The `*_instrumented`
//! entry points accept `Option<SharingConfig>` so tests can race with
//! sharing disabled; the production wrappers always share.
//!
//! # Fault tolerance
//!
//! Each worker body runs under [`std::panic::catch_unwind`]: a panicking
//! worker dies alone while the survivors keep racing, and the race still
//! returns the first definitive answer. All shared state (winner slot,
//! summed stats, cancel mark, incumbent) is locked poison-tolerantly, so
//! a panic inside a critical section cannot wedge the surviving workers.
//! Dead workers are counted in [`PortfolioOutcome::failed_workers`] and —
//! with an enabled [`Recorder`] — recorded as [`WorkerTelemetry`] entries
//! whose `failed` field summarizes the panic payload. The deterministic
//! [`FaultPlan`] accepted by the `*_instrumented` entry points exists to
//! test exactly this machinery (see `docs/ROBUSTNESS.md`).

use crate::config::{EngineConfig, RestartPolicy, SolverKind};
use crate::engine::{PbEngine, PbStats};
use crate::optimize::OptOutcome;
use sbgc_formula::{Assignment, PbConstraint, PbFormula};
use sbgc_obs::{FaultPlan, Recorder, SearchCounters, WorkerTelemetry};
use sbgc_sat::{Budget, CancelToken, SharedClausePool, SharingConfig, SolveOutcome};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Typed failure of a portfolio entry point — misuse conditions that were
/// previously reported by panicking, surfaced as values so callers can
/// degrade gracefully (see `docs/ROBUSTNESS.md`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortfolioError {
    /// The `configs` slice was empty: there is no worker to race.
    NoWorkers,
    /// [`optimize_portfolio`] was called on a formula without an
    /// objective; there is nothing to minimize.
    MissingObjective,
}

impl std::fmt::Display for PortfolioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortfolioError::NoWorkers => write!(f, "portfolio needs at least one config"),
            PortfolioError::MissingObjective => {
                write!(f, "optimize_portfolio requires a formula with an objective")
            }
        }
    }
}

impl std::error::Error for PortfolioError {}

/// Result of a [`solve_portfolio`] race.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The decision answer (first definitive one, else `Unknown`).
    pub outcome: SolveOutcome,
    /// Index (into the `configs` slice) and configuration of the worker
    /// that produced the definitive answer, when there was one.
    pub winner: Option<(usize, EngineConfig)>,
    /// Engine statistics summed over *all* workers — the total work spent,
    /// not just the winner's share.
    pub stats: PbStats,
    /// Number of workers that died (panicked) during the race. The race
    /// result comes from the survivors; a non-zero count alongside a
    /// definitive `outcome` means the portfolio degraded gracefully.
    pub failed_workers: usize,
}

/// Result of an [`optimize_portfolio`] race.
#[derive(Clone, Debug)]
pub struct PortfolioOptOutcome {
    /// The optimization answer (first worker to prove optimality or
    /// infeasibility wins; otherwise the best shared incumbent).
    pub outcome: OptOutcome,
    /// Index and configuration of the winning worker, when one proved the
    /// answer.
    pub winner: Option<(usize, EngineConfig)>,
    /// Engine statistics summed over all workers.
    pub stats: PbStats,
    /// Number of workers that died (panicked) during the race.
    pub failed_workers: usize,
}

/// Locks poison-tolerantly: a mutex poisoned by a panicking worker stays
/// usable for the survivors. All the portfolio's shared state is plain
/// data whose invariants hold between (not within) lock acquisitions, so
/// recovering the inner value is always sound here.
fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a `catch_unwind` payload for telemetry; panic messages are
/// almost always `&str` or `String`.
fn panic_summary(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

fn add_stats(total: &mut PbStats, s: PbStats) {
    total.decisions += s.decisions;
    total.conflicts += s.conflicts;
    total.propagations += s.propagations;
    total.restarts += s.restarts;
    total.learned += s.learned;
    total.deleted += s.deleted;
    total.pb_conflicts += s.pb_conflicts;
    total.learned_literals += s.learned_literals;
    total.lbd_sum += s.lbd_sum;
    total.exported += s.exported;
    total.imported += s.imported;
    // Keep the first exhaustion reason any worker reported; a decided race
    // clears it at the end (the answer supersedes the losers' exhaustion).
    total.exhaust = total.exhaust.or(s.exhaust);
}

/// Human-readable label of a worker configuration: the preset name when
/// the config matches one of the named [`SolverKind`]s, plus suffixes for
/// the modern-CDCL knobs layered on top of it, plus the seed — e.g.
/// `"Galena +adaptive-restarts +chrono +tiered (seed 1)"`.
fn config_label(config: &EngineConfig) -> String {
    const NAMED: [SolverKind; 4] =
        [SolverKind::PbsII, SolverKind::Galena, SolverKind::Pueblo, SolverKind::PbsLegacy];
    for kind in NAMED {
        let preset = kind.engine_config().expect("named kinds are CDCL");
        let mut probe = config.with_seed(0);
        let mut flags = String::new();
        if probe.restart != preset.restart {
            match probe.restart {
                RestartPolicy::Luby { base } => flags.push_str(&format!(" +luby{base}")),
                RestartPolicy::Geometric { first, .. } => flags.push_str(&format!(" +geo{first}")),
                RestartPolicy::AdaptiveLbd { .. } => flags.push_str(" +adaptive-restarts"),
            }
            probe.restart = preset.restart;
        }
        if probe.chrono {
            flags.push_str(" +chrono");
            probe.chrono = false;
        }
        if probe.rephase {
            flags.push_str(" +rephase");
            probe.rephase = false;
        }
        if probe.tiered_reduce {
            flags.push_str(" +tiered");
            probe.tiered_reduce = false;
        }
        if probe == preset {
            return format!("{}{} (seed {})", kind.display_name(), flags, config.seed);
        }
    }
    format!("{config:?}")
}

/// Shared cancel-time mark for measuring cooperative-cancellation latency:
/// the winner stamps it immediately before tripping the [`CancelToken`];
/// losers subtract it from their own finish time.
struct CancelMark(Mutex<Option<Instant>>);

impl CancelMark {
    fn new() -> Self {
        CancelMark(Mutex::new(None))
    }

    fn stamp(&self) {
        *lock_tolerant(&self.0) = Some(Instant::now());
    }

    /// Latency from the stamp to `finish`; `None` if the race was never
    /// cancelled or this worker finished before the stamp.
    fn latency(&self, finish: Instant) -> Option<std::time::Duration> {
        lock_tolerant(&self.0).and_then(|t| finish.checked_duration_since(t))
    }
}

/// A diversified portfolio of `n` engine configurations.
///
/// Worker 0 is the plain PBS II preset with seed 0 — *identical* to the
/// sequential default — so a 1-worker portfolio explores exactly the
/// sequential search tree. Further workers cycle through the legacy-PBS,
/// Pueblo and Galena presets (three explanation strategies) and layer
/// modern-CDCL knobs on top for diversification: adaptive-LBD restarts,
/// chronological backtracking, rephasing and tiered clause-database
/// reduction, in distinct combinations per worker. The ladder is ordered
/// by distance from worker 0's plain PBS II — worker 1 is the *most*
/// different (legacy-PBS explanations, no phase saving, every modern
/// knob on), so a narrow 2-worker portfolio on a small host already
/// spans the extremes of the configuration space. Workers past the
/// first cycle vary the Luby restart base instead, doubling it every
/// lap. Every worker carries its index as the diversification seed,
/// which deterministically perturbs initial phases and VSIDS
/// tie-breaking. No wall-clock randomness anywhere: the same `n` always
/// yields the same portfolio.
pub fn portfolio_configs(n: usize) -> Vec<EngineConfig> {
    const CYCLE: [SolverKind; 4] =
        [SolverKind::PbsII, SolverKind::PbsLegacy, SolverKind::Pueblo, SolverKind::Galena];
    (0..n.max(1))
        .map(|i| {
            let kind = CYCLE[i % CYCLE.len()];
            let mut c = kind.engine_config().expect("CDCL kind").with_seed(i as u64);
            match i {
                // The sequential twin stays byte-identical to the preset.
                0 => {}
                1 => {
                    c.restart = RestartPolicy::AdaptiveLbd { min_interval: 100 };
                    c.chrono = true;
                    c.rephase = true;
                    c.tiered_reduce = true;
                }
                2 => {
                    c.rephase = true;
                    c.tiered_reduce = true;
                }
                3 => {
                    c.restart = RestartPolicy::AdaptiveLbd { min_interval: 50 };
                    c.chrono = true;
                    c.tiered_reduce = true;
                }
                _ => {
                    // Later laps re-run the preset cycle with a doubled Luby
                    // base per lap and the tiered clause database.
                    c.restart = RestartPolicy::Luby { base: 50 << ((i / 4).min(10)) };
                    c.tiered_reduce = true;
                }
            }
            c
        })
        .collect()
}

/// Races one [`PbEngine`] per config on the decision problem; the first
/// worker to answer Sat or Unsat cancels the rest.
///
/// With a single config this degenerates to the sequential solve (plus one
/// scoped thread). All workers share the caller's `budget` — its deadline
/// is armed once, here, so setup and losing workers don't extend it.
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty.
pub fn solve_portfolio(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
) -> Result<PortfolioOutcome, PortfolioError> {
    solve_portfolio_recorded(formula, configs, budget, &Recorder::disabled())
}

/// [`solve_portfolio`] with observability: each worker flushes its search
/// counters into `recorder` and records a [`WorkerTelemetry`] entry
/// (configuration, own counters, whether it won, cancellation latency,
/// run time) on exit. A disabled recorder makes this identical to
/// [`solve_portfolio`].
///
/// # Example
///
/// ```
/// use sbgc_formula::PbFormula;
/// use sbgc_obs::Recorder;
/// use sbgc_pb::{portfolio_configs, solve_portfolio_recorded, Budget};
///
/// let mut f = PbFormula::new();
/// let a = f.new_var().positive();
/// let b = f.new_var().positive();
/// f.add_clause([a, b]);
///
/// let recorder = Recorder::new();
/// let out =
///     solve_portfolio_recorded(&f, &portfolio_configs(2), &Budget::unlimited(), &recorder)
///         .expect("non-empty portfolio");
/// assert!(out.outcome.is_sat());
/// let workers = recorder.workers();
/// assert_eq!(workers.len(), 2);
/// assert_eq!(workers.iter().filter(|w| w.won).count(), 1);
/// ```
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty.
pub fn solve_portfolio_recorded(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
) -> Result<PortfolioOutcome, PortfolioError> {
    solve_portfolio_instrumented(
        formula,
        configs,
        budget,
        recorder,
        None,
        Some(SharingConfig::default()),
    )
}

/// [`solve_portfolio_recorded`] plus deterministic fault injection and a
/// sharing override: when `fault` schedules a panic for a worker, that
/// worker's solve is capped at the scheduled conflict count and then
/// panics — exercising the panic-isolation path on purpose. `sharing`
/// selects the learned-clause export filter (`None` disables clause
/// sharing entirely, for A/B tests). Production callers pass `None` for
/// `fault` and `Some(SharingConfig::default())` for `sharing`.
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty.
pub fn solve_portfolio_instrumented(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
    fault: Option<&FaultPlan>,
    sharing: Option<SharingConfig>,
) -> Result<PortfolioOutcome, PortfolioError> {
    if configs.is_empty() {
        return Err(PortfolioError::NoWorkers);
    }
    let budget = budget.started();
    let race = CancelToken::new();
    let cancel_mark = CancelMark::new();
    let pool = SharedClausePool::new();
    let winner: Mutex<Option<(usize, SolveOutcome)>> = Mutex::new(None);
    let stats: Mutex<PbStats> = Mutex::new(PbStats::default());
    let failed = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for (index, &config) in configs.iter().enumerate() {
            let worker_budget = budget.clone().with_cancel_token(race.clone());
            let sharing_handle = sharing.map(|cfg| pool.handle(index, cfg));
            let (race, winner, stats, cancel_mark, failed) =
                (&race, &winner, &stats, &cancel_mark, &failed);
            s.spawn(move || {
                let run_start = Instant::now();
                let injected = fault.and_then(|p| p.worker_panic(index));
                let body = catch_unwind(AssertUnwindSafe(|| {
                    let worker_budget = match injected {
                        Some(n) => worker_budget.clone().with_max_conflicts(n),
                        None => worker_budget,
                    };
                    let mut engine = PbEngine::from_formula(formula, config);
                    engine.set_recorder(recorder.clone());
                    if let Some(handle) = sharing_handle {
                        engine.set_sharing(handle);
                    }
                    let out = engine.solve_with_budget(&worker_budget);
                    if let Some(n) = injected {
                        panic!("injected fault: worker {index} panicked after {n} conflicts");
                    }
                    let finish = Instant::now();
                    add_stats(&mut lock_tolerant(stats), engine.stats());
                    let mut won = false;
                    if matches!(out, SolveOutcome::Sat(_) | SolveOutcome::Unsat) {
                        let mut w = lock_tolerant(winner);
                        if w.is_none() {
                            *w = Some((index, out));
                            cancel_mark.stamp();
                            race.cancel();
                            won = true;
                        }
                    }
                    if recorder.is_enabled() {
                        engine.flush_recorder();
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            seed: config.seed,
                            config: config_label(&config),
                            search: engine.stats().into(),
                            won,
                            cancel_latency: if won { None } else { cancel_mark.latency(finish) },
                            run_time: finish.duration_since(run_start),
                            failed: None,
                        });
                    }
                }));
                if let Err(payload) = body {
                    failed.fetch_add(1, Ordering::Relaxed);
                    if recorder.is_enabled() {
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            seed: config.seed,
                            config: config_label(&config),
                            search: SearchCounters::default(),
                            won: false,
                            cancel_latency: None,
                            run_time: run_start.elapsed(),
                            failed: Some(panic_summary(payload.as_ref())),
                        });
                    }
                }
            });
        }
    });

    let (winner, outcome) = match lock_tolerant(&winner).take() {
        Some((index, out)) => (Some((index, configs[index])), out),
        None => (None, SolveOutcome::Unknown),
    };
    let mut stats = *lock_tolerant(&stats);
    if !matches!(outcome, SolveOutcome::Unknown) {
        // The race was decided; the losers' budget exhaustion is not the
        // outcome's exhaustion.
        stats.exhaust = None;
    }
    Ok(PortfolioOutcome { outcome, winner, stats, failed_workers: failed.load(Ordering::Relaxed) })
}

/// The shared incumbent of an optimization race: the best objective value
/// (an `AtomicU64`, `u64::MAX` = none yet) plus a model attaining it.
///
/// Update protocol: the model goes into the mutex *before* the value is
/// published with `fetch_min`, so any worker that observes value `v` in
/// the atomic will find a model of value ≤ `v` behind the lock.
struct Incumbent {
    bound: AtomicU64,
    model: Mutex<Option<(u64, Assignment)>>,
}

impl Incumbent {
    fn new() -> Self {
        Incumbent { bound: AtomicU64::new(u64::MAX), model: Mutex::new(None) }
    }

    /// Records `value`/`model` if it improves the incumbent. Returns the
    /// best bound after the update.
    fn offer(&self, value: u64, model: &Assignment) -> u64 {
        {
            let mut m = lock_tolerant(&self.model);
            if m.as_ref().is_none_or(|(b, _)| value < *b) {
                *m = Some((value, model.clone()));
            }
        }
        self.bound.fetch_min(value, Ordering::Release).min(value)
    }

    fn bound(&self) -> u64 {
        self.bound.load(Ordering::Acquire)
    }

    /// Clones the current best (value, model) pair.
    fn snapshot(&self) -> Option<(u64, Assignment)> {
        lock_tolerant(&self.model).clone()
    }

    fn take(self) -> Option<(u64, Assignment)> {
        self.model.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Adds `obj ≤ cut` to `engine` unless an equal or tighter cut is already
/// present, tracking the tightest cut in `local_cut`.
fn strengthen(
    engine: &mut PbEngine,
    objective: &sbgc_formula::Objective,
    local_cut: &mut Option<u64>,
    cut: u64,
) {
    if local_cut.is_none_or(|c| cut < c) {
        engine.add_pb(PbConstraint::at_most(
            objective.terms().iter().map(|&(c, l)| (c as i64, l)),
            cut as i64,
        ));
        *local_cut = Some(cut);
    }
}

/// Races one iterated-strengthening minimization loop per config.
///
/// Workers share their incumbent through an [`AtomicU64`] best bound: at
/// each iteration a worker adopts the tightest known bound as an objective
/// cut (`obj ≤ best − 1`), whether it was found locally or by a peer. The
/// first worker to *prove* optimality (UNSAT under a cut) or infeasibility
/// (UNSAT with no cut) cancels the rest. If the budget runs out first, the
/// best shared incumbent is returned as `Feasible`.
///
/// Soundness of the UNSAT case: every clause in every worker's database —
/// including clauses imported from peers via the shared pool — is entailed
/// by the formula plus the tightest objective cut any worker ever held,
/// and every cut is backed by a genuine incumbent model. A refutation
/// therefore proves the shared incumbent optimal; with no incumbent it
/// proves the formula infeasible (see
/// [`optimize_portfolio_instrumented`] for the full argument).
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty,
/// [`PortfolioError::MissingObjective`] if the formula has no objective.
pub fn optimize_portfolio(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
) -> Result<PortfolioOptOutcome, PortfolioError> {
    optimize_portfolio_recorded(formula, configs, budget, &Recorder::disabled())
}

/// [`optimize_portfolio`] with observability: each worker flushes its
/// search counters into `recorder` and records a [`WorkerTelemetry`]
/// entry on exit. A disabled recorder makes this identical to
/// [`optimize_portfolio`].
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty,
/// [`PortfolioError::MissingObjective`] if the formula has no objective.
pub fn optimize_portfolio_recorded(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
) -> Result<PortfolioOptOutcome, PortfolioError> {
    optimize_portfolio_instrumented(
        formula,
        configs,
        budget,
        recorder,
        None,
        Some(SharingConfig::default()),
    )
}

/// [`optimize_portfolio_recorded`] plus deterministic fault injection and
/// a sharing override (see [`solve_portfolio_instrumented`]). Production
/// callers pass `None` for `fault` and `Some(SharingConfig::default())`
/// for `sharing`.
///
/// Clause sharing stays sound across the iterated-strengthening loop even
/// though workers transiently carry *different* objective cuts. Every cut
/// anywhere is `obj ≤ b − 1` for some published incumbent bound `b`, and
/// the bound only decreases, so every clause in every database is entailed
/// by `formula ∧ (obj ≤ bound − 1)` for the *current* shared bound. A
/// refutation therefore proves the incumbent optimal — and is read that
/// way (the UNSAT branch consults the incumbent, not just the local cut).
/// Only when no incumbent was ever published (hence no cut ever existed
/// and all shared clauses are formula-entailed) does UNSAT mean
/// infeasible.
///
/// # Errors
///
/// [`PortfolioError::NoWorkers`] if `configs` is empty,
/// [`PortfolioError::MissingObjective`] if the formula has no objective.
pub fn optimize_portfolio_instrumented(
    formula: &PbFormula,
    configs: &[EngineConfig],
    budget: &Budget,
    recorder: &Recorder,
    fault: Option<&FaultPlan>,
    sharing: Option<SharingConfig>,
) -> Result<PortfolioOptOutcome, PortfolioError> {
    if configs.is_empty() {
        return Err(PortfolioError::NoWorkers);
    }
    let objective = formula.objective().ok_or(PortfolioError::MissingObjective)?.clone();
    let budget = budget.started();
    let race = CancelToken::new();
    let cancel_mark = CancelMark::new();
    let incumbent = Incumbent::new();
    let pool = SharedClausePool::new();
    let winner: Mutex<Option<(usize, OptOutcome)>> = Mutex::new(None);
    let stats: Mutex<PbStats> = Mutex::new(PbStats::default());
    let failed = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for (index, &config) in configs.iter().enumerate() {
            let worker_budget = budget.clone().with_cancel_token(race.clone());
            let sharing_handle = sharing.map(|cfg| pool.handle(index, cfg));
            let (race, winner, stats, incumbent, objective, cancel_mark, failed) =
                (&race, &winner, &stats, &incumbent, &objective, &cancel_mark, &failed);
            s.spawn(move || {
                let run_start = Instant::now();
                let injected = fault.and_then(|p| p.worker_panic(index));
                let body = catch_unwind(AssertUnwindSafe(|| {
                    let worker_budget = match injected {
                        Some(n) => worker_budget.clone().with_max_conflicts(n),
                        None => worker_budget,
                    };
                    let mut engine = PbEngine::from_formula(formula, config);
                    engine.set_recorder(recorder.clone());
                    if let Some(handle) = sharing_handle {
                        engine.set_sharing(handle);
                    }
                    // Tightest objective cut this worker's engine carries.
                    let mut local_cut: Option<u64> = None;
                    let decided = loop {
                        // Adopt the shared incumbent before (re)solving.
                        let shared = incumbent.bound();
                        if shared == 0 {
                            // A peer holds a zero-cost model: globally optimal,
                            // that peer records the win.
                            break None;
                        }
                        if shared != u64::MAX {
                            strengthen(&mut engine, objective, &mut local_cut, shared - 1);
                        }
                        if worker_budget.exhausted(engine.stats().conflicts) {
                            break None;
                        }
                        match engine.solve_with_budget(&worker_budget) {
                            SolveOutcome::Sat(model) => {
                                let value = objective.value(&model).expect("total model");
                                incumbent.offer(value, &model);
                                if value == 0 {
                                    break Some(OptOutcome::Optimal { value: 0, model });
                                }
                                strengthen(&mut engine, objective, &mut local_cut, value - 1);
                            }
                            SolveOutcome::Unsat => {
                                // Consult the incumbent *at refutation time*:
                                // imported clauses are entailed by the formula
                                // plus the tightest cut any peer ever held
                                // (obj ≤ bound − 1), so this refutation proves
                                // no model of value ≤ bound − 1 exists — the
                                // incumbent (value = bound) is optimal. With
                                // no incumbent anywhere, no cut ever existed,
                                // every clause in every database is entailed
                                // by the formula alone, and the formula is
                                // genuinely infeasible.
                                break Some(match incumbent.snapshot() {
                                    None => OptOutcome::Infeasible,
                                    Some((value, model)) => {
                                        debug_assert!(local_cut.is_none_or(|c| value <= c + 1));
                                        OptOutcome::Optimal { value, model }
                                    }
                                });
                            }
                            SolveOutcome::Unknown => break None,
                        }
                    };
                    if let Some(n) = injected {
                        panic!("injected fault: worker {index} panicked after {n} conflicts");
                    }
                    let finish = Instant::now();
                    add_stats(&mut lock_tolerant(stats), engine.stats());
                    let mut won = false;
                    if let Some(outcome) = decided {
                        let mut w = lock_tolerant(winner);
                        if w.is_none() {
                            *w = Some((index, outcome));
                            cancel_mark.stamp();
                            race.cancel();
                            won = true;
                        }
                    }
                    if recorder.is_enabled() {
                        engine.flush_recorder();
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            seed: config.seed,
                            config: config_label(&config),
                            search: engine.stats().into(),
                            won,
                            cancel_latency: if won { None } else { cancel_mark.latency(finish) },
                            run_time: finish.duration_since(run_start),
                            failed: None,
                        });
                    }
                }));
                if let Err(payload) = body {
                    failed.fetch_add(1, Ordering::Relaxed);
                    if recorder.is_enabled() {
                        recorder.record_worker(WorkerTelemetry {
                            index,
                            seed: config.seed,
                            config: config_label(&config),
                            search: SearchCounters::default(),
                            won: false,
                            cancel_latency: None,
                            run_time: run_start.elapsed(),
                            failed: Some(panic_summary(payload.as_ref())),
                        });
                    }
                }
            });
        }
    });

    let mut stats = *lock_tolerant(&stats);
    let failed_workers = failed.load(Ordering::Relaxed);
    if let Some((index, outcome)) = lock_tolerant(&winner).take() {
        stats.exhaust = None;
        return Ok(PortfolioOptOutcome {
            outcome,
            winner: Some((index, configs[index])),
            stats,
            failed_workers,
        });
    }
    let outcome = match incumbent.take() {
        Some((value, model)) => OptOutcome::Feasible { value, model },
        None => OptOutcome::Unknown,
    };
    Ok(PortfolioOptOutcome { outcome, winner: None, stats, failed_workers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgc_formula::{Lit, Objective, Var};

    fn covering() -> PbFormula {
        // minimize y0 + y1 + y2 s.t. pairwise covers; optimum 2.
        let mut f = PbFormula::new();
        let y: Vec<Lit> = f.new_vars(3).into_iter().map(Var::positive).collect();
        f.add_clause([y[0], y[1]]);
        f.add_clause([y[1], y[2]]);
        f.add_clause([y[0], y[2]]);
        f.set_objective(Objective::minimize(y.iter().map(|&l| (1, l))));
        f
    }

    #[test]
    fn configs_are_deterministic_and_start_sequential() {
        let a = portfolio_configs(4);
        let b = portfolio_configs(4);
        assert_eq!(a, b);
        assert_eq!(a[0], SolverKind::PbsII.engine_config().expect("cdcl"));
        // All workers distinct (kind or seed differs).
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert_ne!(a[i], a[j]);
            }
        }
    }

    #[test]
    fn decision_race_agrees_with_sequential() {
        let f = covering();
        for n in 1..=4 {
            let out = solve_portfolio(&f, &portfolio_configs(n), &Budget::unlimited())
                .expect("non-empty portfolio");
            assert!(matches!(out.outcome, SolveOutcome::Sat(_)), "n={n}");
            assert!(out.winner.is_some());
            assert!(out.stats.decisions > 0);
            assert_eq!(out.failed_workers, 0);
        }
    }

    #[test]
    fn optimization_race_finds_the_optimum() {
        let f = covering();
        for n in 1..=4 {
            let out = optimize_portfolio(&f, &portfolio_configs(n), &Budget::unlimited())
                .expect("non-empty portfolio");
            match out.outcome {
                OptOutcome::Optimal { value, ref model } => {
                    assert_eq!(value, 2, "n={n}");
                    assert!(f.is_satisfied_by(model), "n={n}");
                }
                ref other => panic!("n={n}: expected optimal, got {other:?}"),
            }
            assert!(out.winner.is_some());
        }
    }

    #[test]
    fn infeasibility_is_detected() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_unit(a);
        f.add_unit(!a);
        f.set_objective(Objective::minimize([(1, a)]));
        let out = optimize_portfolio(&f, &portfolio_configs(3), &Budget::unlimited())
            .expect("non-empty portfolio");
        assert!(out.outcome.is_infeasible());
    }

    #[test]
    fn empty_portfolio_is_a_typed_error() {
        let f = covering();
        assert_eq!(
            solve_portfolio(&f, &[], &Budget::unlimited()).unwrap_err(),
            PortfolioError::NoWorkers
        );
        assert_eq!(
            optimize_portfolio(&f, &[], &Budget::unlimited()).unwrap_err(),
            PortfolioError::NoWorkers
        );
    }

    #[test]
    fn missing_objective_is_a_typed_error() {
        let mut f = PbFormula::new();
        let a = f.new_var().positive();
        f.add_unit(a);
        let err = optimize_portfolio(&f, &portfolio_configs(2), &Budget::unlimited()).unwrap_err();
        assert_eq!(err, PortfolioError::MissingObjective);
        assert!(err.to_string().contains("objective"));
    }

    #[test]
    fn zero_budget_cancels_cleanly() {
        let f = covering();
        let b = Budget::unlimited().with_max_conflicts(0);
        let out = optimize_portfolio(&f, &portfolio_configs(4), &b).expect("non-empty portfolio");
        assert!(!out.outcome.is_infeasible());
    }

    #[test]
    fn recorded_race_captures_worker_telemetry() {
        let f = covering();
        let rec = Recorder::new();
        let out =
            optimize_portfolio_recorded(&f, &portfolio_configs(3), &Budget::unlimited(), &rec)
                .expect("non-empty portfolio");
        assert!(out.winner.is_some());
        let workers = rec.workers();
        assert_eq!(workers.len(), 3, "every worker records telemetry");
        assert_eq!(workers.iter().filter(|w| w.won).count(), 1, "exactly one winner");
        for w in &workers {
            assert_eq!(w.seed, w.index as u64, "portfolio seeds are worker indices");
            assert!(!w.config.is_empty());
            assert!(w.failed.is_none());
        }
        // The engines flushed their counters into the shared recorder.
        assert!(rec.counter(sbgc_obs::Counter::Decisions) > 0);
        assert_eq!(rec.counter(sbgc_obs::Counter::Decisions), out.stats.decisions);
    }

    #[test]
    fn disabled_recorder_keeps_portfolio_silent() {
        let f = covering();
        let rec = Recorder::disabled();
        let out = solve_portfolio_recorded(&f, &portfolio_configs(2), &Budget::unlimited(), &rec)
            .expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Sat(_)));
        assert!(rec.workers().is_empty());
        assert_eq!(rec.counter(sbgc_obs::Counter::Decisions), 0);
    }

    #[test]
    fn config_labels_name_the_presets_and_knobs() {
        let labels: Vec<String> = portfolio_configs(6).iter().map(config_label).collect();
        assert_eq!(labels[0], "PBS II (seed 0)");
        assert_eq!(labels[1], "PBS +adaptive-restarts +chrono +rephase +tiered (seed 1)");
        assert_eq!(labels[2], "Pueblo +rephase +tiered (seed 2)");
        assert_eq!(labels[3], "Galena +adaptive-restarts +chrono +tiered (seed 3)");
        // Lap 2: preset cycle again, Luby base doubled, tiered reduction.
        assert_eq!(labels[4], "PBS II +tiered (seed 4)");
        assert_eq!(labels[5], "PBS +luby100 +tiered (seed 5)");
        // Plain presets keep their plain labels.
        assert_eq!(
            config_label(&SolverKind::Pueblo.engine_config().expect("cdcl").with_seed(7)),
            "Pueblo (seed 7)"
        );
    }

    #[test]
    fn pre_cancelled_budget_returns_unknown() {
        let f = covering();
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::unlimited().with_cancel_token(token);
        let out = solve_portfolio(&f, &portfolio_configs(4), &b).expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Unknown));
        assert!(out.winner.is_none());
    }

    #[test]
    fn injected_panic_leaves_survivors_winning() {
        let f = covering();
        let rec = Recorder::new();
        // Kill worker 1 immediately; workers 0 and 2 survive and decide.
        let plan = FaultPlan::new(0).with_worker_panic(1, 0);
        let out = optimize_portfolio_instrumented(
            &f,
            &portfolio_configs(3),
            &Budget::unlimited(),
            &rec,
            Some(&plan),
            Some(SharingConfig::default()),
        )
        .expect("non-empty portfolio");
        match out.outcome {
            OptOutcome::Optimal { value, .. } => assert_eq!(value, 2),
            ref other => panic!("survivors must decide, got {other:?}"),
        }
        assert_eq!(out.failed_workers, 1);
        let (winner_index, _) = out.winner.expect("a survivor won");
        assert_ne!(winner_index, 1, "the dead worker cannot win");
        let workers = rec.workers();
        assert_eq!(workers.len(), 3, "dead workers still record telemetry");
        let dead: Vec<_> = workers.iter().filter(|w| w.failed.is_some()).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].index, 1);
        assert!(dead[0].failed.as_deref().unwrap().contains("injected fault"));
        assert!(!dead[0].won);
    }

    #[test]
    fn injected_panic_in_decision_race_is_survivable() {
        let f = covering();
        let plan = FaultPlan::new(7).with_worker_panic(0, 0);
        let out = solve_portfolio_instrumented(
            &f,
            &portfolio_configs(2),
            &Budget::unlimited(),
            &Recorder::disabled(),
            Some(&plan),
            Some(SharingConfig::default()),
        )
        .expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Sat(_)));
        assert_eq!(out.failed_workers, 1);
        assert_eq!(out.winner.map(|(i, _)| i), Some(1));
    }

    #[test]
    fn all_workers_dead_degrades_gracefully() {
        let f = covering();
        let plan = FaultPlan::new(0).with_worker_panic(0, 0);
        let out = optimize_portfolio_instrumented(
            &f,
            &portfolio_configs(1),
            &Budget::unlimited(),
            &Recorder::disabled(),
            Some(&plan),
            Some(SharingConfig::default()),
        )
        .expect("non-empty portfolio");
        assert!(matches!(out.outcome, OptOutcome::Unknown | OptOutcome::Feasible { .. }));
        assert_eq!(out.failed_workers, 1);
        assert!(out.winner.is_none());
    }

    /// Clausal pigeonhole PHP(holes + 1, holes): UNSAT, with enough
    /// conflicts for workers to actually learn and exchange clauses.
    fn pigeonhole(holes: usize) -> PbFormula {
        let pigeons = holes + 1;
        let mut f = PbFormula::new();
        let x: Vec<Vec<Lit>> = (0..pigeons)
            .map(|_| f.new_vars(holes).into_iter().map(Var::positive).collect())
            .collect();
        for p in &x {
            f.add_clause(p.iter().copied());
        }
        for p in 0..pigeons {
            for q in p + 1..pigeons {
                for (&ph, &qh) in x[p].iter().zip(&x[q]) {
                    f.add_clause([!ph, !qh]);
                }
            }
        }
        f
    }

    #[test]
    fn sharing_on_and_off_agree() {
        // Same race, sharing enabled vs disabled, must reach the same
        // answers — clause exchange is an accelerator, never a semantics
        // change. One UNSAT and one SAT decision instance, plus the
        // optimization race.
        let unsat = pigeonhole(4);
        let sat = covering();
        for sharing in [None, Some(SharingConfig::default())] {
            let out = solve_portfolio_instrumented(
                &unsat,
                &portfolio_configs(3),
                &Budget::unlimited(),
                &Recorder::disabled(),
                None,
                sharing,
            )
            .expect("non-empty portfolio");
            assert!(matches!(out.outcome, SolveOutcome::Unsat), "sharing={sharing:?}");
            if sharing.is_none() {
                assert_eq!(out.stats.exported, 0, "disabled sharing must not export");
                assert_eq!(out.stats.imported, 0, "disabled sharing must not import");
            }

            let out = solve_portfolio_instrumented(
                &sat,
                &portfolio_configs(3),
                &Budget::unlimited(),
                &Recorder::disabled(),
                None,
                sharing,
            )
            .expect("non-empty portfolio");
            assert!(matches!(out.outcome, SolveOutcome::Sat(_)), "sharing={sharing:?}");

            let out = optimize_portfolio_instrumented(
                &sat,
                &portfolio_configs(3),
                &Budget::unlimited(),
                &Recorder::disabled(),
                None,
                sharing,
            )
            .expect("non-empty portfolio");
            match out.outcome {
                OptOutcome::Optimal { value, .. } => assert_eq!(value, 2, "sharing={sharing:?}"),
                ref other => panic!("sharing={sharing:?}: expected optimal, got {other:?}"),
            }
        }
    }

    #[test]
    fn shared_race_exchanges_clauses() {
        // On a conflict-rich UNSAT instance the race must actually use the
        // pool: someone exports, someone imports, and the summed stats
        // surface both so telemetry can report sharing traffic.
        let f = pigeonhole(5);
        let rec = Recorder::new();
        let out = solve_portfolio_recorded(&f, &portfolio_configs(4), &Budget::unlimited(), &rec)
            .expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Unsat));
        assert!(out.stats.exported > 0, "no worker exported a glue clause");
        // Imports are likely but racy (the winner may finish before peers
        // restart); the counters must at least be plumbed through.
        assert_eq!(rec.counter(sbgc_obs::Counter::Exported), out.stats.exported);
        assert_eq!(rec.counter(sbgc_obs::Counter::Imported), out.stats.imported);
    }

    #[test]
    fn worker_panic_does_not_poison_the_shared_pool() {
        // Kill one worker after a handful of conflicts — after it has had
        // the chance to export — with sharing enabled: the pool must stay
        // usable and the survivors must still refute the instance.
        let f = pigeonhole(4);
        let rec = Recorder::new();
        let plan = FaultPlan::new(3).with_worker_panic(1, 5);
        let out = solve_portfolio_instrumented(
            &f,
            &portfolio_configs(3),
            &Budget::unlimited(),
            &rec,
            Some(&plan),
            Some(SharingConfig::default()),
        )
        .expect("non-empty portfolio");
        assert!(matches!(out.outcome, SolveOutcome::Unsat), "survivors must refute");
        assert_eq!(out.failed_workers, 1);
        let (winner_index, _) = out.winner.expect("a survivor won");
        assert_ne!(winner_index, 1, "the dead worker cannot win");
    }
}

//! Tests for the incremental assumptions interface of `PbEngine`.

use sbgc_formula::{Lit, PbConstraint, PbFormula, Var};
use sbgc_pb::{Budget, EngineConfig, PbEngine};

fn engine(f: &PbFormula) -> PbEngine {
    PbEngine::from_formula(f, EngineConfig::default())
}

#[test]
fn assumptions_constrain_the_model() {
    let mut f = PbFormula::new();
    let a = f.new_var().positive();
    let b = f.new_var().positive();
    f.add_clause([a, b]);
    let mut e = engine(&f);
    let out = e.solve_with_assumptions(&[!a], &Budget::unlimited());
    let m = out.model().expect("SAT under assumption");
    assert!(m.satisfies(!a));
    assert!(m.satisfies(b));
}

#[test]
fn assumption_relative_unsat_is_not_global() {
    let mut f = PbFormula::new();
    let a = f.new_var().positive();
    let b = f.new_var().positive();
    f.add_clause([a, b]);
    let mut e = engine(&f);
    // a=false, b=false contradicts the clause — but only under assumptions.
    assert!(e.solve_with_assumptions(&[!a, !b], &Budget::unlimited()).is_unsat());
    // The engine is still usable and the problem still satisfiable.
    assert!(e.solve_with_assumptions(&[!a], &Budget::unlimited()).is_sat());
    assert!(e.solve().is_sat());
}

#[test]
fn assumptions_over_pb_constraints() {
    let mut f = PbFormula::new();
    let lits: Vec<Lit> = f.new_vars(4).into_iter().map(Var::positive).collect();
    f.add_pb(PbConstraint::cardinality(lits.clone(), 2));
    let mut e = engine(&f);
    // Assume three of the four false: cardinality >= 2 impossible.
    assert!(e
        .solve_with_assumptions(&[!lits[0], !lits[1], !lits[2]], &Budget::unlimited())
        .is_unsat());
    // Two false is fine (the other two get forced true).
    let out = e.solve_with_assumptions(&[!lits[0], !lits[1]], &Budget::unlimited());
    let m = out.model().expect("SAT");
    assert!(m.satisfies(lits[2]) && m.satisfies(lits[3]));
}

#[test]
fn learned_clauses_survive_between_queries() {
    // A moderately hard UNSAT core + a relaxing literal: the second query
    // should profit from clauses learned in the first (we can only check
    // it still answers correctly and the stats accumulate).
    let holes = 5;
    let pigeons = holes + 1;
    let mut f = PbFormula::new();
    let var = |p: usize, h: usize| Var::from_index(p * holes + h);
    let _ = f.new_vars(pigeons * holes);
    let relax = f.new_var().positive();
    for p in 0..pigeons {
        let mut row: Vec<Lit> = (0..holes).map(|h| var(p, h).positive()).collect();
        row.push(relax); // relax literal disables the row constraint
        f.add_clause(row);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                f.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    let mut e = engine(&f);
    assert!(e.solve_with_assumptions(&[!relax], &Budget::unlimited()).is_unsat());
    let conflicts_first = e.stats().conflicts;
    assert!(conflicts_first > 0);
    // With the relax literal free the instance is satisfiable.
    assert!(e.solve().is_sat());
    // And the assumption query again: still UNSAT, typically cheaper.
    assert!(e.solve_with_assumptions(&[!relax], &Budget::unlimited()).is_unsat());
    let conflicts_second = e.stats().conflicts - conflicts_first;
    assert!(
        conflicts_second <= conflicts_first * 2,
        "relearning exploded: {conflicts_second} vs {conflicts_first}"
    );
}

#[test]
fn assumption_of_fixed_literal_is_dummy_level() {
    let mut f = PbFormula::new();
    let a = f.new_var().positive();
    let b = f.new_var().positive();
    f.add_unit(a);
    f.add_clause([!a, b]);
    let mut e = engine(&f);
    // `a` is already forced at the root; assuming it must still work.
    let out = e.solve_with_assumptions(&[a, b], &Budget::unlimited());
    assert!(out.is_sat());
    // Assuming its negation is immediately assumption-UNSAT.
    assert!(e.solve_with_assumptions(&[!a], &Budget::unlimited()).is_unsat());
    assert!(e.solve().is_sat());
}

#[test]
fn assumption_cores_are_small_and_sufficient() {
    // exactly-one over 4 variables, plus 4 irrelevant assumptions.
    let mut f = PbFormula::new();
    let lits: Vec<Lit> = f.new_vars(4).into_iter().map(Var::positive).collect();
    let extra: Vec<Lit> = f.new_vars(4).into_iter().map(Var::positive).collect();
    f.add_exactly_one(&lits);
    let mut e = engine(&f);
    // Assume the irrelevant literals plus two conflicting ones.
    let mut assumptions = extra.clone();
    assumptions.push(lits[0]);
    assumptions.push(lits[1]);
    assert!(e.solve_with_assumptions(&assumptions, &Budget::unlimited()).is_unsat());
    let core: Vec<Lit> = e.assumption_core().to_vec();
    assert!(!core.is_empty());
    // The core only mentions given assumptions...
    for l in &core {
        assert!(assumptions.contains(l), "{l} is not an assumption");
    }
    // ...omits the irrelevant ones...
    for l in &extra {
        assert!(!core.contains(l), "irrelevant {l} in core");
    }
    // ...and is itself sufficient for UNSAT.
    assert!(e.solve_with_assumptions(&core, &Budget::unlimited()).is_unsat());
}

#[test]
fn core_of_root_implied_literal() {
    let mut f = PbFormula::new();
    let a = f.new_var().positive();
    f.add_unit(!a);
    let mut e = engine(&f);
    assert!(e.solve_with_assumptions(&[a], &Budget::unlimited()).is_unsat());
    assert_eq!(e.assumption_core(), &[a]);
}

#[test]
fn many_sequential_queries_are_consistent() {
    // Exactly-one over 5: assuming each literal in turn is SAT; assuming
    // any two is UNSAT.
    let mut f = PbFormula::new();
    let lits: Vec<Lit> = f.new_vars(5).into_iter().map(Var::positive).collect();
    f.add_exactly_one(&lits);
    let mut e = engine(&f);
    for &l in &lits {
        let m = e.solve_with_assumptions(&[l], &Budget::unlimited()).model().cloned().expect("SAT");
        assert!(m.satisfies(l));
    }
    for i in 0..5 {
        for j in i + 1..5 {
            assert!(e.solve_with_assumptions(&[lits[i], lits[j]], &Budget::unlimited()).is_unsat());
        }
    }
}

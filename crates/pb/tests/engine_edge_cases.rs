//! Edge-case and stress tests for the PB engine and the B&B baseline.

use sbgc_formula::{Lit, Objective, PbConstraint, PbFormula, Var};
use sbgc_pb::{
    optimize, solve_decision, BnbSolver, Budget, EngineConfig, ExplainStrategy, PbEngine,
    RestartPolicy, SolverKind,
};

#[test]
fn empty_formula_is_sat_for_all_kinds() {
    let f = PbFormula::with_vars(3);
    for kind in SolverKind::APPENDIX {
        assert!(solve_decision(&f, kind, &Budget::unlimited()).is_sat(), "{kind}");
    }
}

#[test]
fn zero_variable_formula() {
    let f = PbFormula::new();
    for kind in SolverKind::APPENDIX {
        assert!(solve_decision(&f, kind, &Budget::unlimited()).is_sat(), "{kind}");
    }
}

#[test]
fn contradictory_units_for_all_kinds() {
    let mut f = PbFormula::new();
    let a = f.new_var().positive();
    f.add_unit(a);
    f.add_unit(!a);
    for kind in SolverKind::APPENDIX {
        assert!(solve_decision(&f, kind, &Budget::unlimited()).is_unsat(), "{kind}");
    }
}

#[test]
fn big_coefficients_saturate_correctly() {
    // 1000a + b >= 1000: a alone satisfies; b irrelevant once a true.
    let mut f = PbFormula::new();
    let a = f.new_var().positive();
    let b = f.new_var().positive();
    f.add_pb(PbConstraint::at_least([(1000, a), (1, b)], 1000));
    f.add_unit(!b);
    let out = solve_decision(&f, SolverKind::PbsII, &Budget::unlimited());
    let m = out.model().expect("SAT");
    assert!(m.satisfies(a));
}

#[test]
fn chained_equalities_propagate_to_fixpoint() {
    // exactly-one over pairs chained: (a,b), (b,c), (c,d): forcing a
    // decides everything alternately.
    let mut f = PbFormula::new();
    let vars: Vec<Lit> = f.new_vars(4).into_iter().map(Var::positive).collect();
    for w in vars.windows(2) {
        f.add_exactly_one(&[w[0], w[1]]);
    }
    f.add_unit(vars[0]);
    let out = solve_decision(&f, SolverKind::Galena, &Budget::unlimited());
    let m = out.model().expect("SAT");
    assert!(m.satisfies(vars[0]));
    assert!(m.satisfies(!vars[1]));
    assert!(m.satisfies(vars[2]));
    assert!(m.satisfies(!vars[3]));
}

#[test]
fn optimization_with_equal_weights_ties() {
    // Minimize a+b subject to a+b >= 1: optimum 1, either variable.
    let mut f = PbFormula::new();
    let a = f.new_var().positive();
    let b = f.new_var().positive();
    f.add_clause([a, b]);
    f.set_objective(Objective::minimize([(1, a), (1, b)]));
    for kind in SolverKind::APPENDIX {
        let out = optimize(&f, kind, &Budget::unlimited());
        assert_eq!(out.value(), Some(1), "{kind}");
    }
}

#[test]
fn restart_policies_terminate() {
    // A moderately hard UNSAT instance under both restart schemes.
    let mut f = PbFormula::new();
    let n = 6;
    let vars: Vec<Lit> = f.new_vars(n * n).into_iter().map(Var::positive).collect();
    // Latin-square-ish contradiction: each row and column exactly one, but
    // forbid every cell in the last row.
    for r in 0..n {
        let row: Vec<Lit> = (0..n).map(|c| vars[r * n + c]).collect();
        f.add_exactly_one(&row);
    }
    for c in 0..n {
        f.add_unit(!vars[(n - 1) * n + c]);
    }
    for restart in
        [RestartPolicy::Luby { base: 2 }, RestartPolicy::Geometric { first: 2, factor: 1.1 }]
    {
        let config = EngineConfig { restart, ..EngineConfig::default() };
        let mut e = PbEngine::from_formula(&f, config);
        assert!(e.solve().is_unsat(), "{restart:?}");
    }
}

#[test]
fn deep_propagation_chain_with_pb_reasons() {
    // x0 forced by PB; then x0 forces x1 via clause; x1 forces x2 via PB...
    let mut f = PbFormula::new();
    let v: Vec<Lit> = f.new_vars(20).into_iter().map(Var::positive).collect();
    f.add_pb(PbConstraint::at_least([(2, v[0]), (1, v[1])], 2)); // forces v0
    for i in 0..18 {
        if i % 2 == 0 {
            f.add_clause([!v[i], v[i + 2]]);
        } else {
            f.add_pb(PbConstraint::at_least([(1, !v[i]), (2, v[i + 2])], 2));
        }
    }
    let out = solve_decision(&f, SolverKind::Pueblo, &Budget::unlimited());
    let m = out.model().expect("SAT");
    assert!(m.satisfies(v[0]));
    assert!(m.satisfies(v[18]));
}

#[test]
fn engine_statistics_are_consistent() {
    let mut f = PbFormula::new();
    let vars: Vec<Lit> = f.new_vars(12).into_iter().map(Var::positive).collect();
    for chunk in vars.chunks(3) {
        f.add_exactly_one(chunk);
        f.add_clause(chunk.to_vec());
    }
    // Conflicting cardinality across the chunks.
    f.add_pb(PbConstraint::cardinality(vars.clone(), 9));
    let mut e = PbEngine::from_formula(&f, EngineConfig::default());
    let _ = e.solve();
    let s = e.stats();
    assert!(s.learned <= s.conflicts);
    assert!(s.deleted <= s.learned);
}

#[test]
fn bnb_finds_same_optimum_as_cdcl_on_knapsackish() {
    // Cover constraints with weighted objective.
    let mut f = PbFormula::new();
    let v: Vec<Lit> = f.new_vars(8).into_iter().map(Var::positive).collect();
    for i in 0..6 {
        f.add_clause([v[i], v[i + 1], v[i + 2]]);
    }
    f.set_objective(Objective::minimize(
        v.iter().enumerate().map(|(i, &l)| (1 + (i as u64 % 3), l)),
    ));
    let a = optimize(&f, SolverKind::PbsII, &Budget::unlimited());
    let mut bnb = BnbSolver::new(&f);
    let b = bnb.run(&Budget::unlimited());
    assert_eq!(a.value(), b.value());
    assert!(a.is_optimal() && b.is_optimal());
}

#[test]
fn all_explain_strategies_learn_valid_clauses() {
    // Solve, then re-check every model against the original formula for
    // each strategy on a constraint-dense instance.
    for strategy in [
        ExplainStrategy::AllFalse,
        ExplainStrategy::GreedyCoefficient,
        ExplainStrategy::GreedyRecency,
    ] {
        let mut f = PbFormula::new();
        let v: Vec<Lit> = f.new_vars(9).into_iter().map(Var::positive).collect();
        for chunk in v.chunks(3) {
            f.add_exactly_one(chunk);
        }
        f.add_pb(PbConstraint::at_least(v.iter().map(|&l| (1, l)), 3));
        f.add_pb(PbConstraint::at_most(v.iter().map(|&l| (1, l)).collect::<Vec<_>>(), 3));
        let config = EngineConfig { explain: strategy, ..EngineConfig::default() };
        let mut e = PbEngine::from_formula(&f, config);
        let mut models = 0;
        while let sbgc_pb::SolveOutcome::Sat(m) = e.solve() {
            assert!(f.is_satisfied_by(&m), "{strategy:?}");
            e.block_model(&m);
            models += 1;
            assert!(models <= 27 * 32, "runaway enumeration: {strategy:?}");
        }
        // Exactly 3*3*3 = 27 combinations (one per chunk), all meeting
        // the cardinality window.
        assert_eq!(models, 27, "{strategy:?}");
    }
}

//! Randomized cross-checks of the PB engines against brute-force
//! enumeration: decision agreement, optimization agreement, and agreement
//! *between* the solver kinds (the paper's "same trends, independent
//! implementations" premise).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbgc_formula::{Lit, Objective, PbConstraint, PbFormula, Var};
use sbgc_pb::{optimize, solve_decision, Budget, SolverKind};
use sbgc_sat::naive;

/// A random mixed CNF+PB formula over `n` variables.
fn random_pb_formula(n: usize, seed: u64, with_objective: bool) -> PbFormula {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = PbFormula::with_vars(n);
    let num_clauses = rng.gen_range(0..2 * n);
    for _ in 0..num_clauses {
        let k = rng.gen_range(1..=3.min(n));
        let mut lits: Vec<Lit> = Vec::with_capacity(k);
        for _ in 0..k {
            let var = Var::from_index(rng.gen_range(0..n));
            lits.push(var.lit(rng.gen_bool(0.5)));
        }
        f.add_clause(lits);
    }
    let num_pbs = rng.gen_range(1..=n.max(2) / 2 + 1);
    for _ in 0..num_pbs {
        let k = rng.gen_range(1..=n);
        let mut terms: Vec<(i64, Lit)> = Vec::with_capacity(k);
        for _ in 0..k {
            let coeff = rng.gen_range(1..=4);
            let var = Var::from_index(rng.gen_range(0..n));
            terms.push((coeff, var.lit(rng.gen_bool(0.5))));
        }
        let max: i64 = terms.iter().map(|&(a, _)| a).sum();
        let bound = rng.gen_range(0..=max);
        if rng.gen_bool(0.5) {
            f.add_pb(PbConstraint::at_least(terms, bound));
        } else {
            f.add_pb(PbConstraint::at_most(terms, bound));
        }
    }
    if with_objective {
        let mut terms: Vec<(u64, Lit)> = Vec::new();
        for i in 0..n {
            if rng.gen_bool(0.7) {
                terms.push((rng.gen_range(1..=3), Var::from_index(i).positive()));
            }
        }
        if !terms.is_empty() {
            f.set_objective(Objective::minimize(terms));
        }
    }
    f
}

#[test]
fn decision_agrees_with_oracle_for_all_kinds() {
    for seed in 0..120u64 {
        let f = random_pb_formula(7, seed, false);
        let expected = naive::solve(&f).is_some();
        for kind in SolverKind::APPENDIX {
            match solve_decision(&f, kind, &Budget::unlimited()) {
                out if out.is_sat() => {
                    assert!(expected, "seed {seed} {kind}: solver SAT, oracle UNSAT");
                    let m = out.model().expect("sat has model");
                    assert!(f.is_satisfied_by(m), "seed {seed} {kind}: bogus model");
                }
                out if out.is_unsat() => {
                    assert!(!expected, "seed {seed} {kind}: solver UNSAT, oracle SAT");
                }
                other => panic!("seed {seed} {kind}: unexpected {other:?}"),
            }
        }
    }
}

#[test]
fn optimization_agrees_with_oracle_for_all_kinds() {
    let mut optimized = 0;
    for seed in 200..280u64 {
        let f = random_pb_formula(6, seed, true);
        if f.objective().is_none() {
            continue;
        }
        let expected = naive::optimize(&f);
        for kind in SolverKind::APPENDIX {
            let out = optimize(&f, kind, &Budget::unlimited());
            match (&expected, &out) {
                (Some((best, _)), o) if o.is_optimal() => {
                    assert_eq!(o.value(), Some(*best), "seed {seed} {kind}");
                    assert!(f.is_satisfied_by(o.model().expect("model")), "seed {seed} {kind}");
                    optimized += 1;
                }
                (None, o) if o.is_infeasible() => {}
                (exp, got) => {
                    panic!("seed {seed} {kind}: oracle {exp:?} vs solver {got:?}")
                }
            }
        }
    }
    assert!(optimized > 50, "too few optimization cases exercised: {optimized}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All five solver kinds agree with each other on random instances.
    #[test]
    fn prop_solver_kinds_agree(n in 2usize..7, seed in any::<u64>()) {
        let f = random_pb_formula(n, seed, false);
        let verdicts: Vec<bool> = SolverKind::APPENDIX
            .iter()
            .map(|&k| solve_decision(&f, k, &Budget::unlimited()).is_sat())
            .collect();
        prop_assert!(
            verdicts.iter().all(|&v| v == verdicts[0]),
            "solver kinds disagree: {verdicts:?}"
        );
    }

    /// Optimal values agree across kinds when an objective is present.
    #[test]
    fn prop_optimal_values_agree(n in 2usize..6, seed in any::<u64>()) {
        let f = random_pb_formula(n, seed, true);
        if f.objective().is_some() {
            let values: Vec<Option<u64>> = SolverKind::APPENDIX
                .iter()
                .map(|&k| optimize(&f, k, &Budget::unlimited()).value())
                .collect();
            prop_assert!(
                values.iter().all(|v| *v == values[0]),
                "optimal values disagree: {values:?}"
            );
        }
    }
}

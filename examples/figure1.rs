//! The worked example of the paper's Figure 1: a 4-vertex graph where the
//! NU, CA and LI constructions admit progressively fewer symmetric
//! solutions.
//!
//! Run with: `cargo run --release --example figure1`

use sbgc_core::{add_instance_independent_sbps, ColoringEncoding, SbpMode};
use sbgc_graph::{Coloring, Graph};
use sbgc_pb::{PbEngine, SolveOutcome, SolverKind};

/// Figure 1(a): V1-V2-V3 a triangle, V4 adjacent to V3 only — so V4 can
/// share a color with V1 or V2, giving the two 3-color partitions the
/// paper discusses.
fn figure1_graph() -> Graph {
    Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
}

/// Enumerates every proper assignment admitted by the encoding + SBPs by
/// repeatedly solving and blocking.
fn enumerate_colorings(graph: &Graph, k: usize, mode: SbpMode) -> Vec<Coloring> {
    let mut encoding = ColoringEncoding::new(graph, k);
    // Drop the objective: we enumerate *all* admitted assignments.
    encoding.formula_mut().clear_objective();
    let _ = add_instance_independent_sbps(&mut encoding, graph, mode);
    let config = SolverKind::PbsII.engine_config().expect("cdcl kind");
    let mut engine = PbEngine::from_formula(encoding.formula(), config);
    let mut found = Vec::new();
    while let SolveOutcome::Sat(model) = engine.solve() {
        if let Some(c) = encoding.decode(&model) {
            found.push(c);
        }
        engine.block_model(&model);
        if found.len() > 5000 {
            break; // safety valve
        }
    }
    // Unique colorings only (different y/aux values can repeat a coloring).
    found.sort_by(|a, b| a.colors().cmp(b.colors()));
    found.dedup_by(|a, b| a.colors() == b.colors());
    found
}

fn main() {
    let graph = figure1_graph();
    println!("Figure 1 example: triangle V1V2V3 plus V4 adjacent to V3");
    println!("4-coloring admitted assignments per SBP construction:\n");
    println!("{:<8} {:>12}   example cardinality vectors (n1,n2,n3,n4)", "SBPs", "#assignments");
    for mode in [
        SbpMode::None,
        SbpMode::Nu,
        SbpMode::Ca,
        SbpMode::Li,
        SbpMode::LiPrefix,
        SbpMode::Orbitope,
        SbpMode::ValuePrec,
    ] {
        let colorings = enumerate_colorings(&graph, 4, mode);
        let mut vectors: Vec<Vec<usize>> = colorings
            .iter()
            .map(|c| {
                let mut sizes = c.class_sizes();
                sizes.resize(4, 0);
                sizes
            })
            .collect();
        vectors.sort();
        vectors.dedup();
        let shown: Vec<String> = vectors.iter().take(4).map(|v| format!("{v:?}")).collect();
        println!(
            "{:<8} {:>12}   {}{}",
            mode.display_name(),
            colorings.len(),
            shown.join(" "),
            if vectors.len() > 4 { " ..." } else { "" }
        );
    }
    println!(
        "\nEach construction admits a subset of the previous one's
assignments: NU pins null colors to the end, CA additionally orders color
classes by size; the paper's LI (anchor encoding) breaks incompletely,
while LI-pfx, Orbitope and ValPrec — three encodings of the same
first-occurrence canonical form — each leave exactly one color assignment
per partition into independent sets (full instance-independent breaking)."
    );
}

//! The n-queens coloring family (paper Appendix): how do the SBP
//! constructions compare on one instance?
//!
//! Run with: `cargo run --release --example queens`

use sbgc_core::{solve_coloring, SbpMode, SolveOptions, SolverKind};
use sbgc_graph::gen::queens;
use sbgc_pb::Budget;
use std::time::Duration;

fn main() {
    let graph = queens(6, 6);
    println!(
        "queen6_6: {} squares, {} attacking pairs; coloring = placing \
         non-attacking queen armies",
        graph.num_vertices(),
        graph.num_edges()
    );

    let budget = || Budget::unlimited().with_timeout(Duration::from_secs(10));
    println!("{:<8} {:>6} {:>12} {:>10}  outcome", "SBPs", "i.-d.?", "time", "conflicts");
    for mode in SbpMode::ALL {
        for instance_dependent in [false, true] {
            let mut options = SolveOptions::new(8)
                .with_sbp_mode(mode)
                .with_solver(SolverKind::PbsII)
                .with_budget(budget());
            if instance_dependent {
                options = options.with_instance_dependent_sbps();
            }
            let report = solve_coloring(&graph, &options);
            let outcome = match report.outcome.colors() {
                Some(c) if report.outcome.is_decided() => format!("optimal: {c} colors"),
                Some(c) => format!("feasible: {c} colors"),
                None => "timeout".to_string(),
            };
            println!(
                "{:<8} {:>6} {:>10.1?} {:>10}  {}",
                mode.display_name(),
                if instance_dependent { "yes" } else { "no" },
                report.solve_time,
                "-",
                outcome
            );
        }
    }
    println!("\n(The paper's Table 5 runs this grid over four queens instances\n and five solvers — see `cargo run -p sbgc-bench --bin table5`.)");
}

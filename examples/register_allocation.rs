//! Register allocation as graph coloring (the paper's motivating
//! application, Chaitin et al. 1981).
//!
//! Variables of a straight-line program are live over intervals; two
//! variables *interfere* when their live ranges overlap and must then live
//! in different registers. A K-coloring of the interference graph is a
//! conflict-free assignment to K registers.
//!
//! Run with: `cargo run --release --example register_allocation`

use sbgc_core::applications::{register_interference_graph, LiveRange};
use sbgc_core::{solve_coloring, ColoringOutcome, SbpMode, SolveOptions};

fn main() {
    // A small compiler temp set, e.g. from an unrolled loop body.
    let names = ["i", "sum", "a", "b", "t0", "t1", "c", "t2", "d", "t3"];
    let ranges = [
        LiveRange::new(0, 14),
        LiveRange::new(0, 15),
        LiveRange::new(1, 5),
        LiveRange::new(2, 6),
        LiveRange::new(3, 7),
        LiveRange::new(5, 9),
        LiveRange::new(6, 11),
        LiveRange::new(8, 12),
        LiveRange::new(10, 13),
        LiveRange::new(12, 15),
    ];
    let graph = register_interference_graph(&ranges);
    println!(
        "interference graph: {} variables, {} conflicts",
        graph.num_vertices(),
        graph.num_edges()
    );

    // An embedded CPU with 4 registers: is a conflict-free assignment
    // possible? (K-coloring with K = number of registers.)
    for k in (3..=5).rev() {
        let options = SolveOptions::new(k).with_sbp_mode(SbpMode::NuSc);
        let report = solve_coloring(&graph, &options);
        match report.outcome {
            ColoringOutcome::Optimal { coloring, colors } => {
                println!("{k} registers: allocatable with {colors} registers used");
                if colors <= k {
                    for (name, r) in names.iter().zip(coloring.colors()) {
                        println!("  {name:>4} -> r{r}");
                    }
                    // colors == minimum register count; no need to go lower.
                }
            }
            ColoringOutcome::InfeasibleAtK => {
                println!("{k} registers: NOT allocatable (spilling required)");
            }
            other => println!("{k} registers: {other:?}"),
        }
    }
}

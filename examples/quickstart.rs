//! Quickstart: color a small graph optimally, with and without symmetry
//! breaking.
//!
//! Run with: `cargo run --release --example quickstart`

use sbgc_core::{chromatic_number, solve_coloring, ColoringOutcome, SbpMode, SolveOptions};
use sbgc_graph::gen::mycielski;

fn main() {
    // The Grötzsch graph: triangle-free but 4-chromatic — a classic
    // adversary for greedy colorers.
    let graph = mycielski(3);
    println!("graph: myciel3 ({} vertices, {} edges)", graph.num_vertices(), graph.num_edges());

    // One-call exact chromatic number (DSATUR bound + exact optimization).
    let result = chromatic_number(&graph, &SolveOptions::new(20));
    println!("chromatic number: {:?}", result.exact());

    // The same, spelled out: encode with K = 6, add the paper's NU+SC
    // instance-independent SBPs, solve, decode, verify.
    let options = SolveOptions::new(6).with_sbp_mode(SbpMode::NuSc);
    let report = solve_coloring(&graph, &options);
    match report.outcome {
        ColoringOutcome::Optimal { coloring, colors } => {
            println!("optimal coloring with {colors} colors (verified proper)");
            println!("  class sizes: {:?}", coloring.class_sizes());
            println!(
                "  formula: {} vars, {} clauses, {} PB constraints",
                report.final_stats.vars,
                report.final_stats.clauses,
                report.final_stats.pb_constraints()
            );
            println!("  solve time: {:?}", report.solve_time);
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // And once more with instance-dependent (Shatter) SBPs on top.
    let options = SolveOptions::new(6).with_sbp_mode(SbpMode::Sc).with_instance_dependent_sbps();
    let report = solve_coloring(&graph, &options);
    if let Some(shatter) = &report.shatter {
        println!(
            "shatter: |Aut| = 10^{:.1}, {} generators, detection {:?}",
            shatter.symmetry.order_log10, shatter.num_generators, shatter.symmetry.detection_time
        );
    }
    println!("with SC + instance-dependent SBPs: {:?}", report.outcome.colors());
}

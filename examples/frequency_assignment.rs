//! Radio frequency assignment as graph coloring (paper Section 2).
//!
//! Each geographic region needing `K` frequencies becomes a `K`-clique;
//! adjacent regions are joined by all bipartite edges so their frequencies
//! cannot overlap. The construction itself introduces extra
//! instance-independent symmetries (the clique vertices of one region are
//! interchangeable) — the case the paper's Section 3 closing remark calls
//! out. This example shows the Shatter flow picking those symmetries up.
//!
//! Run with: `cargo run --release --example frequency_assignment`

use sbgc_core::applications::{frequency_instance, Region};
use sbgc_core::{solve_coloring, SbpMode, SolveOptions};

fn main() {
    let regions: Vec<Region> =
        [("north", 3), ("east", 2), ("south", 3), ("west", 2), ("center", 4)]
            .into_iter()
            .map(|(name, demand)| Region { name: name.into(), demand })
            .collect();
    // Adjacency between regions (center touches everything; ring otherwise).
    let adjacent = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4), (2, 4), (3, 4)];
    let instance = frequency_instance(&regions, &adjacent);
    let graph = &instance.graph;
    println!("frequency graph: {} slots, {} conflicts", graph.num_vertices(), graph.num_edges());

    // How many frequencies does the whole map need?
    let options = SolveOptions::new(16).with_sbp_mode(SbpMode::Nu).with_instance_dependent_sbps();
    let report = solve_coloring(graph, &options);
    if let Some(shatter) = &report.shatter {
        println!(
            "symmetries: |Aut| = 10^{:.1} with {} generators \
             (clique-interchange symmetries from the reduction itself)",
            shatter.symmetry.order_log10, shatter.num_generators
        );
    }
    match report.outcome.colors() {
        Some(k) => {
            println!("minimum number of frequencies: {k}");
            let coloring = report.outcome.coloring().expect("coloring present");
            for (region, members) in regions.iter().zip(instance.interchange_classes()) {
                let freqs: Vec<usize> = members.iter().map(|&v| coloring.color(v)).collect();
                println!("  {:>7}: frequencies {freqs:?}", region.name);
            }
        }
        None => println!("not solved: {:?}", report.outcome),
    }
}

//! The four ways this library can pin down a chromatic number, compared on
//! one instance:
//!
//! 1. one 0-1 ILP **optimization** run (`chromatic_number`, the paper's
//!    main flow);
//! 2. repeated **decision** queries, linear search over K (paper §4.1);
//! 3. repeated decision queries, **binary** search over K (paper §4.1);
//! 4. **incremental** search: one solver, color budget tightened via
//!    assumptions, learned clauses reused (our extension).
//!
//! Run with: `cargo run --release --example chromatic_search`

use sbgc_core::{
    chromatic_number, chromatic_number_by_decision, chromatic_number_incremental, SbpMode,
    SearchStrategy, SolveOptions,
};
use sbgc_graph::gen::queens;
use std::time::Instant;

fn main() {
    let graph = queens(6, 6);
    println!(
        "instance: queen6_6 ({} vertices, {} edges), χ = 7\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    let options = SolveOptions::new(20).with_sbp_mode(SbpMode::NuSc);

    let timed = |name: &str, f: &dyn Fn() -> Option<usize>| {
        let start = Instant::now();
        let chi = f();
        println!("{name:<28} chi = {chi:?}   in {:?}", start.elapsed());
    };

    timed("optimization (paper flow)", &|| chromatic_number(&graph, &options).exact());
    timed("decision, linear search", &|| {
        chromatic_number_by_decision(&graph, &options, SearchStrategy::Linear).exact()
    });
    timed("decision, binary search", &|| {
        chromatic_number_by_decision(&graph, &options, SearchStrategy::Binary).exact()
    });
    timed("incremental (assumptions)", &|| chromatic_number_incremental(&graph, &options).exact());

    println!(
        "\nAll four must agree; the incremental variant reuses one solver\n\
         instance across the K-tightening steps, so conflict clauses learned\n\
         while refuting K colors help refute K-1."
    );
}
